package collective

import (
	"testing"

	"repro/internal/compress"
	"repro/internal/tensor"
)

// sparseEFs builds d private error-feedback compressors over family
// (topk|randomk) at the given fraction, seeds 100+i like the PowerSGD
// equivalence test.
func sparseEFs(t *testing.T, family string, d int, fraction float64) []*compress.ErrorFeedback {
	t.Helper()
	efs := make([]*compress.ErrorFeedback, d)
	for i := range efs {
		var inner compress.Compressor
		switch family {
		case "topk":
			inner = compress.NewTopK(fraction)
		case "randomk":
			inner = compress.NewRandomK(fraction, int64(100+i))
		default:
			t.Fatalf("unknown family %q", family)
		}
		efs[i] = compress.NewErrorFeedback(inner)
	}
	return efs
}

// TestSparseAllReduceCompressedMatchesDensified pins the sparse-native
// merge-union reduction bit-identical (tol 0) to the PR-5 densified
// path across the executor grid sizes, both sparse families, several
// rounds (so error-feedback residuals diverge if anything drifts), and
// shapes with uneven chunks. Run under -race this is also the
// happens-before check for the sparse payload ring.
func TestSparseAllReduceCompressedMatchesDensified(t *testing.T) {
	shapes := [][2]int{{1, 5}, {8, 6}, {7, 13}, {16, 16}}
	for _, family := range []string{"topk", "randomk"} {
		for _, d := range []int{1, 2, 3, 4, 8} {
			for _, sh := range shapes {
				rows, cols := sh[0], sh[1]
				rt := flatRuntime(t, d)
				sparseGrp := rt.NewGroup(ClassDP, rt.Topology().DPGroup(0))
				denseGrp := rt.NewGroup(ClassDP, rt.Topology().DPGroup(0))
				denseGrp.SetDensifiedReduce(true)
				sparseEF := sparseEFs(t, family, d, 0.1)
				denseEF := sparseEFs(t, family, d, 0.1)

				for round := 0; round < 4; round++ {
					grads := randBufs(d, rows, cols, int64(50*d+round))
					sparseBufs := make([]*tensor.Matrix, d)
					denseBufs := make([]*tensor.Matrix, d)
					for i := range grads {
						sparseBufs[i] = grads[i].Clone()
						denseBufs[i] = grads[i].Clone()
					}
					// Groups share ranks, so run one op at a time.
					sparseGrp.AllReduceCompressed(sparseBufs, sparseEF, 1/float64(d))
					denseGrp.AllReduceCompressed(denseBufs, denseEF, 1/float64(d))
					for i := range sparseBufs {
						if !sparseBufs[i].Equal(denseBufs[i], 0) {
							t.Fatalf("%s d=%d shape %v round %d: rank %d sparse != densified", family, d, sh, round, i)
						}
					}
					// Residual trajectories must stay locked too.
					for i := range sparseEF {
						sr, dr := sparseEF[i].Residual(rows, cols), denseEF[i].Residual(rows, cols)
						if (sr == nil) != (dr == nil) || (sr != nil && !sr.Equal(dr, 0)) {
							t.Fatalf("%s d=%d shape %v round %d: rank %d residual diverges", family, d, sh, round, i)
						}
					}
				}
			}
		}
	}
}

// TestSparseAllReduceWireMatchesDensified: the sparse payload ring must
// account exactly the wire volume of the densified path (payload sizes
// are identical; only the reduction representation changes).
func TestSparseAllReduceWireMatchesDensified(t *testing.T) {
	const d, rows, cols = 4, 10, 9
	rt := flatRuntime(t, d)
	sparseGrp := rt.NewGroup(ClassDP, rt.Topology().DPGroup(0))
	denseGrp := rt.NewGroup(ClassDP, rt.Topology().DPGroup(0))
	denseGrp.SetDensifiedReduce(true)

	sp := sparseGrp.AllReduceCompressedAsync(randBufs(d, rows, cols, 3), sparseEFs(t, "topk", d, 0.05), 1.0/d)
	spWire := sp.WaitBytes()
	dn := denseGrp.AllReduceCompressedAsync(randBufs(d, rows, cols, 3), sparseEFs(t, "topk", d, 0.05), 1.0/d)
	dnWire := dn.WaitBytes()
	if spWire != dnWire || spWire == 0 {
		t.Fatalf("sparse wire %d != densified wire %d", spWire, dnWire)
	}
}

// TestSparseReduceCrossoverAccounting drives ops on both sides of
// SparseReduceCapFraction: a 2%-density op must take the merge-union
// path, a 30%-density op at D=4 (union bound 1.2·n > cap) must fall
// back to the dense scatter-add — and both must still match the
// densified oracle bit for bit.
func TestSparseReduceCrossoverAccounting(t *testing.T) {
	const d, rows, cols = 4, 12, 11
	rt := flatRuntime(t, d)
	grp := rt.NewGroup(ClassDP, rt.Topology().DPGroup(0))
	oracle := rt.NewGroup(ClassDP, rt.Topology().DPGroup(0))
	oracle.SetDensifiedReduce(true)

	run := func(fraction float64, seed int64) {
		t.Helper()
		grads := randBufs(d, rows, cols, seed)
		oracleBufs := make([]*tensor.Matrix, d)
		for i := range grads {
			oracleBufs[i] = grads[i].Clone()
		}
		grp.AllReduceCompressed(grads, sparseEFs(t, "topk", d, fraction), 1.0/d)
		oracle.AllReduceCompressed(oracleBufs, sparseEFs(t, "topk", d, fraction), 1.0/d)
		for i := range grads {
			if !grads[i].Equal(oracleBufs[i], 0) {
				t.Fatalf("fraction %v: rank %d diverges from densified oracle", fraction, i)
			}
		}
	}

	base := rt.SparseReduceStats()
	run(0.02, 21)
	after := rt.SparseReduceStats()
	if after.SparseOps != base.SparseOps+1 || after.DenseFallbacks != base.DenseFallbacks {
		t.Fatalf("low-density op: stats %+v -> %+v, want one merge-union op", base, after)
	}

	run(0.3, 22) // Σ nnz = 4·0.3·n = 1.2·n > 0.5·n
	final := rt.SparseReduceStats()
	if final.DenseFallbacks != after.DenseFallbacks+1 || final.SparseOps != after.SparseOps {
		t.Fatalf("high-density op: stats %+v -> %+v, want one dense fallback", after, final)
	}

	// The densified-oracle knob must keep ops out of both counters.
	oracleOnly := rt.SparseReduceStats()
	grads := randBufs(d, rows, cols, 23)
	oracle.AllReduceCompressed(grads, sparseEFs(t, "topk", d, 0.02), 1.0/d)
	if got := rt.SparseReduceStats(); got != oracleOnly {
		t.Fatalf("densified op moved sparse counters: %+v -> %+v", oracleOnly, got)
	}
}

// TestSendCompressedSparseMatchesDense: the sparse p2p path must hand
// the receiver the identical pooled dense tensor, account identical
// wire bytes, and evolve the sender's residual identically.
func TestSendCompressedSparseMatchesDense(t *testing.T) {
	for _, family := range []string{"topk", "randomk"} {
		rt := flatRuntime(t, 2)
		efSparse := sparseEFs(t, family, 1, 0.1)[0]
		efDense := sparseEFs(t, family, 1, 0.1)[0]
		for round := 0; round < 3; round++ {
			g := randBufs(1, 9, 7, int64(70+round))[0]

			wireS, ok := rt.SendCompressedSparse(ClassPP, 0, 1, g, efSparse)
			if !ok {
				t.Fatalf("%s: sparse send refused", family)
			}
			gotS, pooledS := rt.Recv(ClassPP, 1, 0)

			wireD, _ := rt.SendCompressed(ClassPP, 0, 1, g, efDense)
			gotD, pooledD := rt.Recv(ClassPP, 1, 0)

			if wireS != wireD {
				t.Fatalf("%s round %d: wire %d != %d", family, round, wireS, wireD)
			}
			if !pooledS || !pooledD {
				t.Fatalf("%s round %d: both paths must hand over pooled tensors", family, round)
			}
			if !gotS.Equal(gotD, 0) {
				t.Fatalf("%s round %d: received tensors diverge", family, round)
			}
			rs, rd := efSparse.Residual(9, 7), efDense.Residual(9, 7)
			if rs == nil || rd == nil || !rs.Equal(rd, 0) {
				t.Fatalf("%s round %d: sender residuals diverge", family, round)
			}
			rt.Pool().Put(gotS)
			rt.Pool().Put(gotD)
		}
	}
	// Non-sparse families refuse and send nothing.
	rt := flatRuntime(t, 2)
	ef := compress.NewErrorFeedback(compress.NewPowerSGD(2, 5))
	if _, ok := rt.SendCompressedSparse(ClassPP, 0, 1, tensor.New(4, 4), ef); ok {
		t.Fatal("powersgd must refuse the sparse p2p path")
	}
}

// TestSparseAllReduceSteadyStateZeroAllocs pins the tentpole's
// allocation contract: a steady-state sparse-native compress + ring +
// merge-union reduce cycle allocates nothing (payload buffers, sparse
// ship copies, merge scratch and op descriptors all recycle).
func TestSparseAllReduceSteadyStateZeroAllocs(t *testing.T) {
	const d = 4
	rt := flatRuntime(t, d)
	grp := rt.NewGroup(ClassDP, rt.Topology().DPGroup(0))
	efs := sparseEFs(t, "topk", d, 0.05)
	bufs := randBufs(d, 32, 32, 9)
	warm := func() { grp.AllReduceCompressed(bufs, efs, 1.0/d) }
	for i := 0; i < 3; i++ {
		warm() // fill pools, EF residuals, payload capacities
	}
	if n := testing.AllocsPerRun(20, warm); n != 0 {
		t.Fatalf("steady-state sparse all-reduce allocates (%v allocs/op)", n)
	}
}
