package collective

import (
	"testing"

	"repro/internal/compress"
	"repro/internal/tensor"
)

// TestAsyncAllReduceMatchesBlocking pins the issue/wait split's first
// contract: N operations issued back-to-back on one group — all in
// flight together — produce exactly the buffers the blocking calls
// produce one at a time, at tolerance 0 and any rank count.
func TestAsyncAllReduceMatchesBlocking(t *testing.T) {
	const ops = 8
	for _, d := range []int{2, 3, 4, 7} {
		rt := flatRuntime(t, d)
		grp := rt.NewGroup(ClassDP, rt.Topology().DPGroup(0))

		async := make([][]*tensor.Matrix, ops)
		block := make([][]*tensor.Matrix, ops)
		for i := range async {
			async[i] = randBufs(d, 5, 9, int64(100*d+i))
			block[i] = make([]*tensor.Matrix, d)
			for j := range block[i] {
				block[i][j] = async[i][j].Clone()
			}
		}

		handles := make([]*Pending, ops)
		for i, bufs := range async {
			handles[i] = grp.AllReduceAsync(bufs, 1/float64(d))
		}
		for _, h := range handles {
			h.Wait()
		}
		for i, bufs := range block {
			grp.AllReduce(bufs, 1/float64(d))
			for j := range bufs {
				if !bufs[j].Equal(async[i][j], 0) {
					t.Fatalf("d=%d op %d buffer %d: async result differs from blocking", d, i, j)
				}
			}
		}
		rt.Close()
	}
}

// TestAsyncCompressedMatchesBlocking covers the lossy variant: the
// error-feedback residual sequence must be identical whether operations
// are waited one at a time or all in flight, because each compressor is
// driven exactly once per issue in issue order.
func TestAsyncCompressedMatchesBlocking(t *testing.T) {
	const d, ops = 3, 6
	mkEFs := func() []*compress.ErrorFeedback {
		efs := make([]*compress.ErrorFeedback, d)
		for i := range efs {
			efs[i] = compress.NewErrorFeedback(compress.NewPowerSGD(2, int64(40+i)))
		}
		return efs
	}
	run := func(asyncIssue bool) [][]*tensor.Matrix {
		rt := flatRuntime(t, d)
		defer rt.Close()
		grp := rt.NewGroup(ClassDP, rt.Topology().DPGroup(0))
		efs := mkEFs()
		out := make([][]*tensor.Matrix, ops)
		var handles []*Pending
		for i := range out {
			out[i] = randBufs(d, 6, 8, int64(i))
			if asyncIssue {
				handles = append(handles, grp.AllReduceCompressedAsync(out[i], efs, 1/float64(d)))
			} else {
				grp.AllReduceCompressed(out[i], efs, 1/float64(d))
			}
		}
		for _, h := range handles {
			h.Wait()
		}
		return out
	}
	a, b := run(true), run(false)
	for i := range a {
		for j := range a[i] {
			if !a[i][j].Equal(b[i][j], 0) {
				t.Fatalf("op %d buffer %d: in-flight compressed result differs from blocking", i, j)
			}
		}
	}
}

// TestAsyncBroadcastMatchesBlocking covers the third primitive.
func TestAsyncBroadcastMatchesBlocking(t *testing.T) {
	const d = 4
	rt := flatRuntime(t, d)
	defer rt.Close()
	grp := rt.NewGroup(ClassDP, rt.Topology().DPGroup(0))
	bufs := randBufs(d, 3, 5, 9)
	h := grp.BroadcastAsync(bufs, 1)
	h.Wait()
	for j := range bufs {
		if !bufs[j].Equal(bufs[1], 0) {
			t.Fatalf("buffer %d differs from root after async broadcast", j)
		}
	}
}

// TestPendingWireBytes pins the executed per-operation volume the bucket
// crosschecks rely on: a dense all-reduce of a V-byte buffer moves
// exactly 2·V·(D−1) bytes in aggregate, a broadcast (D−1)·V, and a
// compressed all-reduce (D−1)·Σ payload bytes.
func TestPendingWireBytes(t *testing.T) {
	const rows, cols = 6, 8
	v := int64(rows*cols) * compress.ElemBytes
	for _, d := range []int{2, 3, 5} {
		rt := flatRuntime(t, d)
		grp := rt.NewGroup(ClassDP, rt.Topology().DPGroup(0))

		h := grp.AllReduceAsync(randBufs(d, rows, cols, 1), 1/float64(d))
		h.Wait()
		if got, want := h.WireBytes(), 2*v*int64(d-1); got != want {
			t.Fatalf("d=%d dense all-reduce wire %d, want %d", d, got, want)
		}

		h = grp.BroadcastAsync(randBufs(d, rows, cols, 2), 0)
		h.Wait()
		if got, want := h.WireBytes(), v*int64(d-1); got != want {
			t.Fatalf("d=%d broadcast wire %d, want %d", d, got, want)
		}

		efs := make([]*compress.ErrorFeedback, d)
		for i := range efs {
			efs[i] = compress.NewErrorFeedback(compress.NewPowerSGD(2, int64(i)))
		}
		payload := int64(2*(rows+cols)) * compress.ElemBytes // rank·(n+m) elements
		h = grp.AllReduceCompressedAsync(randBufs(d, rows, cols, 3), efs, 1/float64(d))
		h.Wait()
		if got, want := h.WireBytes(), int64(d)*int64(d-1)*payload; got != want {
			t.Fatalf("d=%d compressed all-reduce wire %d, want %d", d, got, want)
		}
		rt.Close()
	}
}

// TestPendingDone pins the non-blocking completion probe: after Wait has
// returned on a fresh handle, Done reported true; Done never consumes
// the handle.
func TestPendingDone(t *testing.T) {
	const d = 3
	rt := flatRuntime(t, d)
	defer rt.Close()
	grp := rt.NewGroup(ClassDP, rt.Topology().DPGroup(0))
	h := grp.AllReduceAsync(randBufs(d, 4, 4, 1), 1)
	for !h.Done() {
	}
	if !h.Done() {
		t.Fatal("Done flipped back")
	}
	h.Wait()

	// Single-rank issues complete at issue time.
	single := rt.NewGroup(ClassDP, []int{0})
	h = single.AllReduceAsync([]*tensor.Matrix{tensor.New(2, 2)}, 0.5)
	if !h.Done() {
		t.Fatal("single-rank async op not Done at issue")
	}
	h.Wait()
}

// TestAsyncSteadyStateZeroAllocs pins the handle model's allocation
// contract: issuing and waiting collectives — including several in
// flight at once — reuses pooled op descriptors and allocates nothing
// after warm-up.
func TestAsyncSteadyStateZeroAllocs(t *testing.T) {
	const d = 4
	rt := flatRuntime(t, d)
	defer rt.Close()
	grp := rt.NewGroup(ClassDP, rt.Topology().DPGroup(0))
	a := randBufs(d, 8, 8, 1)
	b := randBufs(d, 8, 8, 2)
	handles := make([]*Pending, 2)
	warm := func() {
		handles[0] = grp.AllReduceAsync(a, 0.5)
		handles[1] = grp.AllReduceAsync(b, 0.5)
		handles[0].Wait()
		handles[1].Wait()
	}
	warm()
	if n := testing.AllocsPerRun(20, warm); n != 0 {
		t.Fatalf("steady-state async issue+wait allocates (%v allocs/op)", n)
	}
}

// TestAsyncManyInFlightDeterministic stresses the op-queue path well past
// the queue depth: 100 in-flight dense ops on one group, then the same
// sequence blocking, bit-identical.
func TestAsyncManyInFlightDeterministic(t *testing.T) {
	const d, ops = 3, 100
	rt := flatRuntime(t, d)
	defer rt.Close()
	grp := rt.NewGroup(ClassDP, rt.Topology().DPGroup(0))
	async := make([][]*tensor.Matrix, ops)
	block := make([][]*tensor.Matrix, ops)
	handles := make([]*Pending, ops)
	for i := range async {
		async[i] = randBufs(d, 2, 3, int64(i))
		block[i] = make([]*tensor.Matrix, d)
		for j := range block[i] {
			block[i][j] = async[i][j].Clone()
		}
	}
	for i := range async {
		handles[i] = grp.AllReduceAsync(async[i], 1/float64(d))
	}
	for i := ops - 1; i >= 0; i-- { // wait out of order: handles are independent
		handles[i].Wait()
	}
	for i := range block {
		grp.AllReduce(block[i], 1/float64(d))
		for j := range block[i] {
			if !block[i][j].Equal(async[i][j], 0) {
				t.Fatalf("op %d buffer %d differs", i, j)
			}
		}
	}
}
