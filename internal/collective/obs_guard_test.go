package collective

import (
	"testing"

	"repro/internal/obs"
)

// The linkOf conversion relies on Class and obs.Link sharing ordinals;
// pin the correspondence so reordering either enum fails loudly instead
// of mislabeling trace spans.
func TestLinkOfMatchesClassOrdinals(t *testing.T) {
	cases := []struct {
		c Class
		l obs.Link
	}{
		{ClassDP, obs.LinkDP},
		{ClassPP, obs.LinkPP},
		{ClassEmb, obs.LinkEmb},
	}
	for _, cs := range cases {
		if got := linkOf(cs.c); got != cs.l {
			t.Fatalf("linkOf(%v) = %v, want %v", cs.c, got, cs.l)
		}
	}
}
