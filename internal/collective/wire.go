package collective

import (
	"encoding/binary"
	"fmt"

	"repro/internal/tensor"
)

// Wire format. A remote transport ships each Msg as one length-prefixed
// frame:
//
//	uint32 LE  body length
//	body:
//	  byte     version (wireVersion)
//	  byte     link class
//	  byte     kind (ring step | point-to-point)
//	  byte     flags (payload presence + pooled marker)
//	  uint32   from rank
//	  uint32   to rank
//	  uint64   accounted bytes (Msg.Bytes — the modelled fp16 wire size)
//	  payload  dense or sparse tensor image (see tensor codec), if flagged
//
// Msg.Bytes rides the frame unchanged so a remote run's per-class Stats
// stay bit-equal to the in-memory oracle's: the accounting models the
// paper's fp16 links while the payload carries the reproduction's exact
// float64 image (frame bytes are tallied separately by SocketTransport).
//
// Encoding appends to caller-provided (pooled) buffers and never
// allocates beyond them. Decoding treats the input as untrusted: every
// bound is validated and violations return errors, never panics — the
// fuzz tests pin this.

const (
	wireVersion = 1

	// frameHeaderLen is the body length before any payload.
	frameHeaderLen = 20

	// maxFrameBody bounds a frame body so a corrupt length prefix cannot
	// force a giant read buffer.
	maxFrameBody = 1 << 30
)

// frameKind distinguishes the two transport planes within one stream.
type frameKind byte

const (
	frameRing frameKind = 0
	frameP2P  frameKind = 1
)

// Payload flag bits.
const (
	flagDense  = 1 << 0
	flagSparse = 1 << 1
	flagPooled = 1 << 2
)

// frameHeader is the decoded routing half of a frame.
type frameHeader struct {
	class Class
	kind  frameKind
	from  int
	to    int
}

// appendFrame appends the complete frame (length prefix included) for m
// to buf and returns the extended slice.
func appendFrame(buf []byte, c Class, kind frameKind, from, to int, m Msg) []byte {
	if m.Payload != nil && m.Sparse != nil {
		panic("collective: message carries both dense and sparse payloads")
	}
	var flags byte
	bodyLen := frameHeaderLen
	if m.Payload != nil {
		flags |= flagDense
		if m.Pooled {
			flags |= flagPooled
		}
		bodyLen += tensor.EncodedMatrixLen(m.Payload)
	}
	if m.Sparse != nil {
		flags |= flagSparse
		bodyLen += tensor.EncodedSparseLen(m.Sparse)
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(bodyLen))
	buf = append(buf, wireVersion, byte(c), byte(kind), flags)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(from))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(to))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(m.Bytes))
	if m.Payload != nil {
		buf = tensor.AppendMatrix(buf, m.Payload)
	}
	if m.Sparse != nil {
		buf = tensor.AppendSparse(buf, m.Sparse)
	}
	return buf
}

// decodeFrameBody decodes one frame body (the bytes after the length
// prefix). world bounds the rank fields; pool, when non-nil, supplies
// the decoded payload tensors (pooled dense frames and sparse frames —
// non-pooled dense frames always decode into fresh allocations, because
// the receiver may retain them indefinitely, as a pipeline stage does
// its forward activations).
func decodeFrameBody(body []byte, world int, pool *tensor.Pool) (frameHeader, Msg, error) {
	var h frameHeader
	var m Msg
	if len(body) < frameHeaderLen {
		return h, m, fmt.Errorf("collective: frame body truncated: %d bytes", len(body))
	}
	if v := body[0]; v != wireVersion {
		return h, m, fmt.Errorf("collective: frame version %d, want %d", v, wireVersion)
	}
	if c := body[1]; c >= byte(numClasses) {
		return h, m, fmt.Errorf("collective: frame class %d out of range", c)
	}
	if k := body[2]; k > byte(frameP2P) {
		return h, m, fmt.Errorf("collective: frame kind %d out of range", k)
	}
	flags := body[3]
	if flags&^(flagDense|flagSparse|flagPooled) != 0 {
		return h, m, fmt.Errorf("collective: frame flags %#x out of range", flags)
	}
	if flags&flagDense != 0 && flags&flagSparse != 0 {
		return h, m, fmt.Errorf("collective: frame flags both dense and sparse")
	}
	if flags&flagPooled != 0 && flags&flagDense == 0 {
		return h, m, fmt.Errorf("collective: frame pooled flag without dense payload")
	}
	from := int(binary.LittleEndian.Uint32(body[4:]))
	to := int(binary.LittleEndian.Uint32(body[8:]))
	if from < 0 || from >= world || to < 0 || to >= world {
		return h, m, fmt.Errorf("collective: frame rank pair (%d,%d) outside world %d", from, to, world)
	}
	h = frameHeader{class: Class(body[1]), kind: frameKind(body[2]), from: from, to: to}
	m.Bytes = int64(binary.LittleEndian.Uint64(body[12:]))
	rest := body[frameHeaderLen:]
	var err error
	switch {
	case flags&flagDense != 0:
		m.Pooled = flags&flagPooled != 0
		var alloc func(rows, cols int) *tensor.Matrix
		if pool != nil && m.Pooled {
			alloc = pool.GetUninit
		}
		m.Payload, rest, err = tensor.DecodeMatrix(rest, alloc)
	case flags&flagSparse != 0:
		var alloc func(rows, cols int) *tensor.Sparse
		if pool != nil {
			alloc = pool.GetSparse
		}
		m.Sparse, rest, err = tensor.DecodeSparse(rest, alloc)
	}
	if err != nil {
		return h, Msg{}, err
	}
	if len(rest) != 0 {
		return h, Msg{}, fmt.Errorf("collective: frame has %d trailing bytes", len(rest))
	}
	return h, m, nil
}
