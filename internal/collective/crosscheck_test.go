package collective

import (
	"testing"

	"repro/internal/compress"
	"repro/internal/simnet"
)

// TestStepsMatchThakurModel pins the executable runtime and the analytic
// simulator to the same Thakur ring schedule: for every rank count —
// including the ranks=2 edge case, where a naive implementation is
// tempted to do a single exchange — the steps the transport observed
// must equal simnet.AllReduceSteps, and pricing the executed traffic
// with Link.TimeForVolume must equal Link.AllReduceTime's prediction.
func TestStepsMatchThakurModel(t *testing.T) {
	link := simnet.Link{Name: "ib", BandwidthBps: 200e9, LatencySec: 5e-6}
	const rows, cols = 8, 105 // 840 elements: divides evenly for every d below, so volumes match exactly
	for d := 2; d <= 8; d++ {
		rt := flatRuntime(t, d)
		grp := rt.NewGroup(ClassDP, rt.Topology().DPGroup(0))
		bufs := randBufs(d, rows, cols, int64(d))
		grp.AllReduce(bufs, 1/float64(d))
		st := rt.Stats().For(ClassDP)

		if want := int64(simnet.AllReduceSteps(d)); st.Steps != want {
			t.Fatalf("d=%d: runtime took %d steps, Thakur model says %d", d, st.Steps, want)
		}
		v := int64(rows*cols) * compress.ElemBytes
		perRankBytes := st.Bytes / int64(d)
		perRankSteps := int(st.Steps) // every rank participates in every step
		executed := link.TimeForVolume(perRankBytes, perRankSteps)
		predicted := link.AllReduceTime(v, d)
		if executed != predicted {
			t.Fatalf("d=%d: executed-traffic time %v != predicted %v", d, executed, predicted)
		}
	}
}

// TestRanks2EdgeCase spells the satellite fix out: 2 ranks means 2 steps
// and per-rank volume V on both the analytic and the executed side.
func TestRanks2EdgeCase(t *testing.T) {
	if got := simnet.AllReduceSteps(2); got != 2 {
		t.Fatalf("simnet says %d steps for 2 ranks, Thakur says 2", got)
	}
	rt := flatRuntime(t, 2)
	grp := rt.NewGroup(ClassDP, []int{0, 1})
	bufs := randBufs(2, 3, 4, 1)
	grp.AllReduce(bufs, 0.5)
	st := rt.Stats().For(ClassDP)
	if st.Steps != 2 {
		t.Fatalf("runtime took %d steps for 2 ranks, want 2", st.Steps)
	}
	v := int64(3*4) * compress.ElemBytes
	if perRank := st.Bytes / 2; perRank != v {
		t.Fatalf("per-rank volume %d, want V=%d (2V(D-1)/D at D=2)", perRank, v)
	}
}
