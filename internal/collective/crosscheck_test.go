package collective

import (
	"testing"

	"repro/internal/compress"
	"repro/internal/simnet"
)

// TestStepsMatchThakurModel pins the executable runtime and the analytic
// simulator to the same Thakur ring schedule: for every rank count —
// including the ranks=2 edge case, where a naive implementation is
// tempted to do a single exchange — the steps the transport observed
// must equal simnet.AllReduceSteps, and pricing the executed traffic
// with Link.TimeForVolume must equal Link.AllReduceTime's prediction.
func TestStepsMatchThakurModel(t *testing.T) {
	link := simnet.Link{Name: "ib", BandwidthBps: 200e9, LatencySec: 5e-6}
	const rows, cols = 8, 105 // 840 elements: divides evenly for every d below, so volumes match exactly
	for d := 2; d <= 8; d++ {
		rt := flatRuntime(t, d)
		grp := rt.NewGroup(ClassDP, rt.Topology().DPGroup(0))
		bufs := randBufs(d, rows, cols, int64(d))
		grp.AllReduce(bufs, 1/float64(d))
		st := rt.Stats().For(ClassDP)

		if want := int64(simnet.AllReduceSteps(d)); st.Steps != want {
			t.Fatalf("d=%d: runtime took %d steps, Thakur model says %d", d, st.Steps, want)
		}
		v := int64(rows*cols) * compress.ElemBytes
		perRankBytes := st.Bytes / int64(d)
		perRankSteps := int(st.Steps) // every rank participates in every step
		executed := link.TimeForVolume(perRankBytes, perRankSteps)
		predicted := link.AllReduceTime(v, d)
		if executed != predicted {
			t.Fatalf("d=%d: executed-traffic time %v != predicted %v", d, executed, predicted)
		}
	}
}

// TestP2PMatchesInterStageModel pins the point-to-point primitives to
// the analytic inter-stage model: driving one replica's 1F1B schedule —
// one forward Send and one backward Send per boundary per micro-batch —
// must put exactly simnet.InterStageMessages messages (each one
// latency-bearing step) and the dense fwd+bwd volume on the pp class,
// and pricing the executed traffic with TimeForVolume must equal pricing
// the prediction. This is the wire-accounting contract the trainer's
// executor (and the serial path's forward-send fix) build on.
func TestP2PMatchesInterStageModel(t *testing.T) {
	link := simnet.Link{Name: "ib", BandwidthBps: 200e9, LatencySec: 5e-6}
	const rows, cols = 8, 16
	for _, g := range []struct{ stages, micros int }{{2, 4}, {4, 4}, {4, 2}} {
		topo, err := NewTopology(1, g.stages)
		if err != nil {
			t.Fatal(err)
		}
		rt := NewRuntime(topo, NewMemTransportDepth(topo.World(), g.micros), nil)
		// Enact every transfer the 1F1B schedule induces — one forward
		// send down and one backward send up per boundary per micro-batch
		// — pairing each send with its receive (the queues are deep
		// enough that the real executor's skew never blocks either).
		for s := 0; s < g.stages-1; s++ {
			for mi := 0; mi < g.micros; mi++ {
				rt.Send(ClassPP, topo.Rank(0, s), topo.Rank(0, s+1), randBufs(1, rows, cols, int64(s))[0])
				rt.Recv(ClassPP, topo.Rank(0, s+1), topo.Rank(0, s))
				rt.Send(ClassPP, topo.Rank(0, s+1), topo.Rank(0, s), randBufs(1, rows, cols, int64(s+1))[0])
				rt.Recv(ClassPP, topo.Rank(0, s), topo.Rank(0, s+1))
			}
		}
		st := rt.Stats().For(ClassPP)
		wantMsgs := int64(simnet.InterStageMessages(g.stages, g.micros))
		if st.Messages != wantMsgs {
			t.Fatalf("p=%d m=%d: executed %d pp messages, model says %d", g.stages, g.micros, st.Messages, wantMsgs)
		}
		if st.Steps != wantMsgs {
			t.Fatalf("p=%d m=%d: executed %d pp steps, want one per message (%d)", g.stages, g.micros, st.Steps, wantMsgs)
		}
		dense := int64(rows*cols) * compress.ElemBytes
		if want := wantMsgs * dense; st.Bytes != want {
			t.Fatalf("p=%d m=%d: executed %d pp bytes, fwd+bwd dense model says %d", g.stages, g.micros, st.Bytes, want)
		}
		if exec, pred := link.TimeForVolume(st.Bytes, int(st.Steps)), link.TimeForVolume(wantMsgs*dense, int(wantMsgs)); exec != pred {
			t.Fatalf("p=%d m=%d: executed-traffic time %v != predicted %v", g.stages, g.micros, exec, pred)
		}
		rt.Close()
	}
}

// TestSendCompressedAccountsWireBytes pins the compressed point-to-point
// path: only the payload's wire bytes travel (not the dense volume), the
// receiver sees the sender's error-feedback reconstruction exactly, and
// the shipped buffer is pool-borrowed.
func TestSendCompressedAccountsWireBytes(t *testing.T) {
	rt := flatRuntime(t, 2)
	const rows, cols, rank = 8, 16, 2
	ef := compress.NewErrorFeedback(compress.NewPowerSGD(rank, 1))
	ef.SetPool(rt.Pool())
	g := randBufs(1, rows, cols, 3)[0]

	wire, recon := rt.SendCompressed(ClassPP, 0, 1, g, ef)
	got, pooled := rt.Recv(ClassPP, 1, 0)
	if !pooled {
		t.Fatal("compressed payload not marked pooled")
	}
	if !got.Equal(recon, 0) {
		t.Fatal("receiver's reconstruction differs from the sender's")
	}
	if wire >= g.SizeBytes(compress.ElemBytes) {
		t.Fatalf("compressed wire bytes %d not below dense %d", wire, g.SizeBytes(compress.ElemBytes))
	}
	st := rt.Stats().For(ClassPP)
	if st.Bytes != wire || st.Messages != 1 || st.Steps != 1 {
		t.Fatalf("accounted %+v, want {Bytes:%d Messages:1 Steps:1}", st, wire)
	}
	// The low-rank payload is (rows+cols)·rank elements on the wire.
	if want := int64(rows+cols) * rank * compress.ElemBytes; wire != want {
		t.Fatalf("wire bytes %d, low-rank model says %d", wire, want)
	}
	rt.Pool().Put(got)
}

// TestRanks2EdgeCase spells the satellite fix out: 2 ranks means 2 steps
// and per-rank volume V on both the analytic and the executed side.
func TestRanks2EdgeCase(t *testing.T) {
	if got := simnet.AllReduceSteps(2); got != 2 {
		t.Fatalf("simnet says %d steps for 2 ranks, Thakur says 2", got)
	}
	rt := flatRuntime(t, 2)
	grp := rt.NewGroup(ClassDP, []int{0, 1})
	bufs := randBufs(2, 3, 4, 1)
	grp.AllReduce(bufs, 0.5)
	st := rt.Stats().For(ClassDP)
	if st.Steps != 2 {
		t.Fatalf("runtime took %d steps for 2 ranks, want 2", st.Steps)
	}
	v := int64(3*4) * compress.ElemBytes
	if perRank := st.Bytes / 2; perRank != v {
		t.Fatalf("per-rank volume %d, want V=%d (2V(D-1)/D at D=2)", perRank, v)
	}
}
