package collective

import (
	"repro/internal/tensor"
)

// Wire twins of the ring schedules. Over a remote transport a member can
// only read data that arrived in a message, so each collective re-plans
// its data movement — under three invariants the cross-transport oracle
// tests pin against the in-memory run:
//
//   - bit-identity: every reduction folds contributions in flat member
//     order 0..D−1, exactly the order of the shared-memory schedules and
//     the serial reference, so results match at tolerance 0;
//   - Stats parity: each member sends the same number of messages with
//     the same modelled byte sizes as its in-memory twin (steps are
//     booked once per op by accountSteps), so per-class Bytes, Messages
//     and Steps — summed over the grid's processes — are equal;
//   - issue-order determinism: every process issues the same ops in the
//     same order, and per-(class, kind, pair) frame streams are FIFO, so
//     in-flight ops never interleave across the wire.
//
// The dense all-reduce cannot use the in-memory reduce-scatter directly:
// that schedule folds each segment incrementally in rotated ring order
// (owner+1, owner+2, …), which is a different floating-point addition
// order than the flat fold. Instead, phase 1 scatters raw segments to
// their owners — member m sends its untouched copy of segment seg(o) to
// each owner o — and the owner folds all D raw copies flat. The sent
// multiset per member is every chunk except its own segment: exactly the
// bytes and message count of the in-memory reduce-scatter. Phase 2 is
// the standard ring all-gather, now shipping the reduced segment data.

// sendData ships a data-carrying ring message: bytes is the modelled
// (accounted) wire size, data the float64 image. The transport encodes
// synchronously, so the caller may reuse data (a chunk view header) the
// moment this returns. Pooled asks the receiving transport to decode
// into its pool; the receiving member returns the tensor after folding.
func (p *Pending) sendData(self, to int, bytes int64, data *tensor.Matrix) {
	p.g.rt.tr.Send(p.g.class, self, to, Msg{Bytes: bytes, Payload: data, Pooled: true})
	p.wire.Add(bytes)
}

// sendMsg forwards a received (or locally built) payload message as-is,
// tallying the op's executed volume.
func (p *Pending) sendMsg(self, to int, m Msg) {
	p.g.rt.tr.Send(p.g.class, self, to, m)
	p.wire.Add(m.Bytes)
}

// seg returns the segment index member o owns in the reduce-scatter
// partition (chunk o+1, the segment the in-memory schedule leaves on
// member o after D−1 rounds).
func (p *Pending) seg(o int) int { return mod(o+1, len(p.g.ranks)) }

// runAllReduceWire executes member m's wire all-reduce: scatter raw
// segments to their owners, fold flat, ring all-gather the reduced data.
func (p *Pending) runAllReduceWire(m int) {
	g := p.g
	d := len(g.ranks)
	tr, cls := g.rt.tr, g.class
	pool := g.rt.pool
	self, right, left := g.ranks[m], g.ranks[mod(m+1, d)], g.ranks[mod(m-1, d)]
	buf := p.bufs[m]
	va, vb := &p.viewA[m], &p.viewB[m]

	// Phase 1a: send my raw copy of every other owner's segment, in
	// ascending owner order (a fixed order keeps per-pair streams
	// deterministic when several ops are in flight).
	for o := 0; o < d; o++ {
		if o == m {
			continue
		}
		s := p.seg(o)
		buf.SliceInto(vb, p.offs[s], p.offs[s+1])
		p.sendData(self, g.ranks[o], p.chunkBytes(s), vb)
	}

	// Phase 1b: fold my segment from every member's raw copy, in flat
	// member order — my own buffer contributes at slot m.
	s := p.seg(m)
	lo, hi := p.offs[s], p.offs[s+1]
	sum := pool.Get(1, hi-lo)
	for j := 0; j < d; j++ {
		if j == m {
			buf.SliceInto(vb, lo, hi)
			sum.Add(vb)
			continue
		}
		msg := tr.Recv(cls, self, g.ranks[j])
		sum.Add(msg.Payload)
		pool.Put(msg.Payload)
	}
	if p.scale != 1 {
		sum.Scale(p.scale)
	}
	buf.SliceInto(va, lo, hi)
	va.CopyFrom(sum)
	pool.Put(sum)

	// Phase 2: ring all-gather, data in the messages. Chunk (m+1−t)
	// goes right, chunk (m−t) arrives from the left.
	for t := 0; t < d-1; t++ {
		c := mod(m+1-t, d)
		buf.SliceInto(vb, p.offs[c], p.offs[c+1])
		p.sendData(self, right, p.chunkBytes(c), vb)
		msg := tr.Recv(cls, self, left)
		rc := mod(m-t, d)
		buf.SliceInto(va, p.offs[rc], p.offs[rc+1])
		va.CopyFrom(msg.Payload)
		pool.Put(msg.Payload)
	}
}

// runAllReduceCompressedWire executes member m's compressed schedule
// over the wire: compress locally, ring all-gather the payloads (each
// step forwards the payload received on the previous one — now the
// decoded payload itself, re-encoded on send), then fold every member's
// payload in flat member order.
func (p *Pending) runAllReduceCompressedWire(m int) {
	if p.sparse {
		p.runAllReduceCompressedSparseWire(m)
		return
	}
	g := p.g
	d := len(g.ranks)
	tr, cls := g.rt.tr, g.class
	self, right, left := g.ranks[m], g.ranks[mod(m+1, d)], g.ranks[mod(m-1, d)]

	// The reconstruction is the compressor's scratch, but unlike the
	// in-memory path no copy is needed: the transport serializes it
	// synchronously on send, only this member folds from it, and this
	// worker executes any successor op on the same compressor strictly
	// after this one. Received payloads land in p.recons[j] (never slot
	// m, which the op-finish cleanup would return to the pool).
	pl, recon := p.efs[m].CompressWithFeedback(p.bufs[m])
	cur := Msg{Bytes: pl.WireBytes(), Payload: recon, Pooled: true}
	for t := 0; t < d-1; t++ {
		p.sendMsg(self, right, cur)
		cur = tr.Recv(cls, self, left)
		p.recons[mod(m-1-t, d)] = cur.Payload
	}

	buf := p.bufs[m]
	buf.Zero()
	for j := 0; j < d; j++ {
		if j == m {
			buf.Add(recon)
		} else {
			buf.Add(p.recons[j])
		}
	}
	if p.scale != 1 {
		buf.Scale(p.scale)
	}
}

// runAllReduceCompressedSparseWire is the sparse-native wire schedule:
// the index/value payloads themselves ride the ring, and the fold is the
// same capped merge-union as in memory (every member holds all D
// payloads, so the cap decision is uniform across processes).
func (p *Pending) runAllReduceCompressedSparseWire(m int) {
	g := p.g
	d := len(g.ranks)
	tr, cls := g.rt.tr, g.class
	pool := g.rt.pool
	self, right, left := g.ranks[m], g.ranks[mod(m+1, d)], g.ranks[mod(m-1, d)]

	// Like the dense wire path: the payload aliases the compressor's
	// scratch but needs no copy (synchronous serialization + per-worker
	// op serialization). Received payloads land in p.spl[j], j ≠ m.
	pl, _ := p.efs[m].CompressWithFeedbackSparse(p.bufs[m])
	own := &pl.Sparse
	cur := Msg{Bytes: pl.WireBytes(), Sparse: own}
	for t := 0; t < d-1; t++ {
		p.sendMsg(self, right, cur)
		cur = tr.Recv(cls, self, left)
		p.spl[mod(m-1-t, d)] = cur.Sparse
	}
	slot := func(j int) *tensor.Sparse {
		if j == m {
			return own
		}
		return p.spl[j]
	}

	buf := p.bufs[m]
	total := 0
	for j := 0; j < d; j++ {
		total += slot(j).NNZ()
	}
	if float64(total) > SparseReduceCapFraction*float64(buf.NumElements()) {
		if m == 0 {
			g.rt.spFallbacks.Add(1)
		}
		buf.Zero()
		for j := 0; j < d; j++ {
			tensor.SpAxpyInto(buf, 1, slot(j))
		}
		if p.scale != 1 {
			buf.Scale(p.scale)
		}
		return
	}
	if m == 0 {
		g.rt.spOps.Add(1)
	}
	sa, sb := pool.GetSparse(buf.Rows, buf.Cols), pool.GetSparse(buf.Rows, buf.Cols)
	cur2, next := slot(0), sa
	for j := 1; j < d; j++ {
		tensor.MergeUnionInto(next, cur2, slot(j))
		if next == sa {
			cur2, next = sa, sb
		} else {
			cur2, next = sb, sa
		}
	}
	buf.Zero()
	tensor.SpAxpyInto(buf, p.scale, cur2)
	pool.PutSparse(sa)
	pool.PutSparse(sb)
}

// runBroadcastWire executes member m's share of the ring pipeline with
// the buffer data in the messages.
func (p *Pending) runBroadcastWire(m int) {
	g := p.g
	d := len(g.ranks)
	tr, cls := g.rt.tr, g.class
	pool := g.rt.pool
	self, right, left := g.ranks[m], g.ranks[mod(m+1, d)], g.ranks[mod(m-1, d)]
	rel := mod(m-p.root, d)
	if rel > 0 {
		msg := tr.Recv(cls, self, left)
		p.bufs[m].CopyFrom(msg.Payload)
		pool.Put(msg.Payload)
	}
	if rel < d-1 {
		p.sendData(self, right, p.opBytes, p.bufs[m])
	}
}
