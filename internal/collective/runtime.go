package collective

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/tensor"
)

// Runtime owns the per-rank worker goroutines that execute collectives
// and the workspace pool their reduction scratch comes from. Workers are
// created once and live until Close, so a steady-state collective spawns
// no goroutines and performs no allocations — the property the
// BenchmarkAllReduce* benchmarks pin at 0 allocs/op.
type Runtime struct {
	topo Topology
	tr   Transport
	pool *tensor.Pool

	// remote selects the wire execution paths: group collectives ship
	// chunk and payload data inside messages instead of reading peer
	// buffers through shared memory.
	remote bool
	// local[r] reports whether rank r executes in this process. All true
	// over an in-process transport; exactly one true over a remote one
	// (the transport's LocalRank). Workers exist — and group work is
	// dispatched — only for local ranks.
	local []bool

	work      []chan task
	closeOnce sync.Once

	// Sparse-reduction accounting: how many compressed all-reduces ran the
	// merge-union path vs fell back to a dense scatter-add because the
	// payload union crossed the density cap (see SparseReduceCapFraction).
	spOps       atomic.Int64
	spFallbacks atomic.Int64

	// Executed-run tracing (nil when disabled — every record call is then
	// an inlined nil-receiver no-op, pinned at 0 allocs). Worker rank r
	// records its exec spans on track recWorkerBase+r; finished ops record
	// one issue→finish span per operation on track recOpsBase+class.
	rec           *obs.Recorder
	recWorkerBase int
	recOpsBase    int
}

// SetRecorder attaches an executed-run span recorder. Worker exec spans
// land on tracks [workerBase, workerBase+World); per-operation spans on
// tracks opsBase+Class. Must be called before any collective is issued;
// pass nil to disable (the default).
func (r *Runtime) SetRecorder(rec *obs.Recorder, workerBase, opsBase int) {
	r.rec = rec
	r.recWorkerBase = workerBase
	r.recOpsBase = opsBase
}

// linkOf maps a link class to its trace-span link ordinal. The two enums
// deliberately share values; this is the single conversion point (with a
// compile-time guard in obs_guard_test.go).
func linkOf(c Class) obs.Link { return obs.Link(c) }

// SparseReduceStats counts how AllReduceCompressed operations reduced
// sparse-native payloads: SparseOps ran the merge-union path,
// DenseFallbacks crossed the density cap and reduced densely. Ops on
// non-sparse families (PowerSGD, quantizers) appear in neither.
type SparseReduceStats struct {
	SparseOps      int64
	DenseFallbacks int64
}

// SparseReduceStats snapshots the sparse-reduction counters.
func (r *Runtime) SparseReduceStats() SparseReduceStats {
	return SparseReduceStats{
		SparseOps:      r.spOps.Load(),
		DenseFallbacks: r.spFallbacks.Load(),
	}
}

// task is one rank's share of an issued group collective.
type task struct {
	p      *Pending
	member int
}

// workQueueDepth sizes each rank's op queue. The depth only throttles
// how far ahead an issuing goroutine can run — correctness is
// independent of it (workers drain their queues in FIFO order, and ops
// are fully enqueued before the next one starts) — but it should absorb
// a full stage's bucketed DP-sync issue burst so overlapped issue never
// blocks on the queue in practice.
const workQueueDepth = 32

// NewRuntime starts one worker per local rank of topo: every rank over
// an in-process transport, exactly one over a remote transport (which
// must expose its LocalRank; the other ranks live in other processes
// running the same code). A nil transport gets an in-process
// MemTransport sized to the topology; a nil pool gets a fresh
// tensor.Pool (the trainer passes its own so all layers recycle the same
// buffers). Call Close to release the workers.
func NewRuntime(topo Topology, tr Transport, pool *tensor.Pool) *Runtime {
	if tr == nil {
		tr = NewMemTransport(topo.World())
	}
	if pool == nil {
		pool = tensor.NewPool()
	}
	world := topo.World()
	r := &Runtime{topo: topo, tr: tr, pool: pool, work: make([]chan task, world)}
	r.local = make([]bool, world)
	if tr.Remote() {
		r.remote = true
		lr, ok := tr.(interface{ LocalRank() int })
		if !ok {
			panic("collective: remote transport does not expose LocalRank")
		}
		rank := lr.LocalRank()
		if rank < 0 || rank >= world {
			panic(fmt.Sprintf("collective: transport local rank %d outside world %d", rank, world))
		}
		r.local[rank] = true
		if p, ok := tr.(interface{ SetDecodePool(*tensor.Pool) }); ok {
			p.SetDecodePool(pool)
		}
	} else {
		for i := range r.local {
			r.local[i] = true
		}
	}
	for i := range r.work {
		if !r.local[i] {
			continue
		}
		r.work[i] = make(chan task, workQueueDepth)
		go r.worker(i)
	}
	return r
}

// LocalRank reports whether rank r executes in this process.
func (r *Runtime) LocalRank(rank int) bool { return r.local[rank] }

func (r *Runtime) worker(rank int) {
	for tk := range r.work[rank] {
		if rec := r.rec; rec != nil {
			g := tk.p.g
			start := rec.Now()
			tk.p.exec(tk.member)
			rec.Record(r.recWorkerBase+rank, obs.PhaseCollExec, linkOf(g.class),
				start, 0, g.tag, -1, -1)
		} else {
			tk.p.exec(tk.member)
		}
		tk.p.wg.Done()
	}
}

// Close stops every rank worker. Collectives must not be in flight or
// issued afterwards. Idempotent.
func (r *Runtime) Close() {
	r.closeOnce.Do(func() {
		for _, ch := range r.work {
			if ch != nil {
				close(ch)
			}
		}
	})
}

// Topology returns the rank grid this runtime was built for.
func (r *Runtime) Topology() Topology { return r.topo }

// Transport returns the underlying transport (for traffic snapshots).
func (r *Runtime) Transport() Transport { return r.tr }

// Stats snapshots the transport's per-class traffic.
func (r *Runtime) Stats() Stats { return r.tr.Stats() }

// Pool returns the runtime's workspace pool.
func (r *Runtime) Pool() *tensor.Pool { return r.pool }

// AccountP2P accounts an in-process point-to-point transfer (see
// Transport.AccountP2P).
func (r *Runtime) AccountP2P(c Class, from, to int, bytes int64) {
	r.tr.AccountP2P(c, from, to, bytes)
}

// NewGroup binds a set of ranks, in ring order, to a link class. The ring
// order is also the deterministic reduction order. Ranks must be distinct
// and inside the runtime's world. Groups over disjoint rank sets may run
// collectives concurrently; groups sharing a rank must not.
func (r *Runtime) NewGroup(class Class, ranks []int) *Group {
	if len(ranks) == 0 {
		panic("collective: empty group")
	}
	seen := make(map[int]bool, len(ranks))
	for _, rk := range ranks {
		if rk < 0 || rk >= r.topo.World() {
			panic(fmt.Sprintf("collective: rank %d outside world %d", rk, r.topo.World()))
		}
		if seen[rk] {
			panic(fmt.Sprintf("collective: duplicate rank %d in group", rk))
		}
		seen[rk] = true
	}
	return &Group{
		rt:    r,
		class: class,
		ranks: append([]int(nil), ranks...),
		tag:   -1,
	}
}
