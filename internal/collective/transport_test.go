package collective

import (
	"testing"
)

func expectPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s did not panic", name)
		}
	}()
	f()
}

// TestMemTransportDepthClamp pins the p2pDepth<2 clamp documented on
// NewMemTransportDepth: degenerate depths are raised to 2, so a single
// send-ahead message per direction can never deadlock.
func TestMemTransportDepthClamp(t *testing.T) {
	for _, depth := range []int{-3, 0, 1, 2} {
		tr := NewMemTransportDepth(2, depth)
		for _, c := range Classes() {
			if got := cap(tr.p2p[c][tr.pairIdx(0, 1)]); got != 2 {
				t.Fatalf("depth %d class %v: p2p capacity %d, want clamped 2", depth, c, got)
			}
		}
		// The clamped queue must absorb two sends without a receiver.
		tr.SendP2P(ClassPP, 0, 1, Msg{Bytes: 1})
		tr.SendP2P(ClassPP, 0, 1, Msg{Bytes: 2})
		if m := tr.RecvP2P(ClassPP, 1, 0); m.Bytes != 1 {
			t.Fatalf("depth %d: got bytes %d, want 1", depth, m.Bytes)
		}
		tr.RecvP2P(ClassPP, 1, 0)
	}
	// Above the clamp the requested depth is honored.
	tr := NewMemTransportDepth(2, 5)
	if got := cap(tr.p2p[ClassDP][tr.pairIdx(1, 0)]); got != 5 {
		t.Fatalf("p2p capacity %d, want 5", got)
	}
}

// TestMemTransportAccountP2PBounds pins AccountP2P's validation: a
// misaddressed accounting call panics instead of silently counting
// traffic on a link that does not exist.
func TestMemTransportAccountP2PBounds(t *testing.T) {
	tr := NewMemTransport(3)

	before := tr.Stats().For(ClassPP)
	tr.AccountP2P(ClassPP, 0, 2, 128)
	got := tr.Stats().For(ClassPP).Sub3(before)
	if got.Bytes != 128 || got.Messages != 1 || got.Steps != 1 {
		t.Fatalf("valid AccountP2P counted %+v", got)
	}

	expectPanic(t, "negative class", func() { tr.AccountP2P(Class(-1), 0, 1, 8) })
	expectPanic(t, "class out of range", func() { tr.AccountP2P(numClasses, 0, 1, 8) })
	expectPanic(t, "from below range", func() { tr.AccountP2P(ClassPP, -1, 1, 8) })
	expectPanic(t, "from above range", func() { tr.AccountP2P(ClassPP, 3, 1, 8) })
	expectPanic(t, "to below range", func() { tr.AccountP2P(ClassPP, 0, -1, 8) })
	expectPanic(t, "to above range", func() { tr.AccountP2P(ClassPP, 0, 3, 8) })

	// Socket transport validates identically.
	strs := newSocketGrid(t, "unix", 2)
	strs[0].AccountP2P(ClassPP, 0, 1, 64)
	if s := strs[0].Stats().For(ClassPP); s.Bytes != 64 || s.Messages != 1 || s.Steps != 1 {
		t.Fatalf("socket AccountP2P counted %+v", s)
	}
	expectPanic(t, "socket class out of range", func() { strs[0].AccountP2P(numClasses, 0, 1, 8) })
	expectPanic(t, "socket rank out of range", func() { strs[0].AccountP2P(ClassPP, 0, 2, 8) })
}

// Sub3 subtracts o field-wise (test helper for windowed class stats).
func (s ClassStats) Sub3(o ClassStats) ClassStats {
	s.Bytes -= o.Bytes
	s.Messages -= o.Messages
	s.Steps -= o.Steps
	return s
}
