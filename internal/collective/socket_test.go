package collective

import (
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/compress"
	"repro/internal/tensor"
)

// socketAddrs allocates one data address per rank: short-lived unix
// socket paths (kept short — the sun_path limit is ~104 bytes) or
// 127.0.0.1 TCP listeners opened up front so every address is concrete
// before any transport constructs.
func socketAddrs(t testing.TB, network string, world int) (addrs []string, lns []net.Listener) {
	t.Helper()
	addrs = make([]string, world)
	switch network {
	case "unix":
		dir, err := os.MkdirTemp("", "occ")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { os.RemoveAll(dir) })
		for r := range addrs {
			addrs[r] = filepath.Join(dir, fmt.Sprintf("r%d.sock", r))
		}
	case "tcp":
		lns = make([]net.Listener, world)
		for r := range addrs {
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			lns[r] = ln
			addrs[r] = ln.Addr().String()
		}
	default:
		t.Fatalf("bad network %q", network)
	}
	return addrs, lns
}

// newSocketGrid rendezvouses one SocketTransport per rank, all
// in-process — each instance plays the part of one rank's process.
func newSocketGrid(t testing.TB, network string, world int) []*SocketTransport {
	t.Helper()
	addrs, lns := socketAddrs(t, network, world)
	trs := make([]*SocketTransport, world)
	errs := make([]error, world)
	var wg sync.WaitGroup
	for r := 0; r < world; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			cfg := SocketConfig{
				Network: network, Rank: r, World: world, Addrs: addrs,
				DialTimeout: 20 * time.Second,
			}
			if lns != nil {
				trs[r], errs[r] = NewSocketTransportListener(cfg, lns[r])
			} else {
				trs[r], errs[r] = NewSocketTransport(cfg)
			}
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d rendezvous: %v", r, err)
		}
	}
	t.Cleanup(func() {
		for _, tr := range trs {
			tr.Close()
		}
	})
	return trs
}

func TestSocketFrameExchange(t *testing.T) {
	for _, network := range []string{"unix", "tcp"} {
		t.Run(network, func(t *testing.T) {
			const world = 3
			trs := newSocketGrid(t, network, world)

			// Ring tokens: FIFO per (class, pair), Bytes intact.
			for r := 0; r < world; r++ {
				next := (r + 1) % world
				for i := 0; i < 5; i++ {
					trs[r].Send(ClassDP, r, next, Msg{Bytes: int64(100*r + i)})
				}
			}
			for r := 0; r < world; r++ {
				prev := (r + world - 1) % world
				for i := 0; i < 5; i++ {
					if got := trs[r].Recv(ClassDP, r, prev); got.Bytes != int64(100*prev+i) {
						t.Fatalf("rank %d token %d: bytes %d, want %d", r, i, got.Bytes, 100*prev+i)
					}
				}
			}

			// Dense ring payload: the float64 image crosses intact and the
			// Pooled marker survives.
			dense := tensor.New(3, 4)
			fillSeq(dense)
			trs[0].Send(ClassEmb, 0, 1, Msg{Bytes: 24, Payload: dense, Pooled: true})
			got := trs[1].Recv(ClassEmb, 1, 0)
			if got.Bytes != 24 || !got.Pooled || got.Payload == nil || !got.Payload.Equal(dense, 0) {
				t.Fatalf("dense payload mangled: %+v", got)
			}

			// Sparse point-to-point payload.
			sp := testSparse(3, 4, []int{1, 5, 11}, []float64{-1, 2.5, 3})
			trs[2].SendP2P(ClassPP, 2, 0, Msg{Bytes: 36, Sparse: sp})
			gotP := trs[0].RecvP2P(ClassPP, 0, 2)
			if gotP.Sparse == nil || gotP.Sparse.NNZ() != 3 || gotP.Sparse.Indices[2] != 11 || gotP.Sparse.Values[1] != 2.5 {
				t.Fatalf("sparse payload mangled: %+v", gotP)
			}

			// Self-send loops back through the codec.
			trs[1].Send(ClassPP, 1, 1, Msg{Bytes: 7, Payload: dense})
			if got := trs[1].Recv(ClassPP, 1, 1); got.Bytes != 7 || !got.Payload.Equal(dense, 0) {
				t.Fatal("self-send mangled")
			}

			// Stats count at the sender, modelled bytes only.
			s0 := trs[0].Stats()
			if s0.For(ClassDP).Messages != 5 || s0.For(ClassDP).Bytes != 0+1+2+3+4 {
				t.Fatalf("rank 0 ClassDP stats %+v", s0.For(ClassDP))
			}
			if s0.For(ClassEmb).Messages != 1 || s0.For(ClassEmb).Bytes != 24 {
				t.Fatalf("rank 0 ClassEmb stats %+v", s0.For(ClassEmb))
			}
			for r, tr := range trs {
				if tr.FrameBytes() <= 0 {
					t.Fatalf("rank %d framed no bytes", r)
				}
			}
		})
	}
}

func fillSeq(m *tensor.Matrix) {
	for i := range m.Data {
		m.Data[i] = float64(i)*1.5 - 3
	}
}

// TestSocketRuntimeEquivalence is the collective-level cross-transport
// oracle: a 4-rank group runs the full op mix over unix sockets — one
// Runtime per transport instance, exactly the process-per-rank shape —
// and every local result must be bit-identical (tol 0) to the same ops
// over MemTransport, with aggregated per-class Stats equal.
func TestSocketRuntimeEquivalence(t *testing.T) {
	const d = 4
	rows, cols := 7, 13 // odd: uneven chunks
	topo, err := NewTopology(d, 1)
	if err != nil {
		t.Fatal(err)
	}

	// One op script, executed identically by every rank process and by
	// the in-memory oracle. Compressor families cover the dense wire
	// runner (PowerSGD), the sparse merge-union runner (small TopK), and
	// the sparse dense-fallback runner (TopK over the density cap).
	type procResult struct {
		bufs  []*tensor.Matrix
		stats Stats
		sp    SparseReduceStats
	}
	script := func(rt *Runtime) procResult {
		g := rt.NewGroup(ClassDP, topo.DPGroup(0))
		ge := rt.NewGroup(ClassEmb, topo.DPGroup(0))
		bufs := randBufs(d, rows, cols, 17)
		efsP := make([]*compress.ErrorFeedback, d)
		efsS := make([]*compress.ErrorFeedback, d)
		efsF := make([]*compress.ErrorFeedback, d)
		for i := range efsP {
			efsP[i] = compress.NewErrorFeedback(compress.NewPowerSGD(2, int64(100+i)))
			efsS[i] = compress.NewErrorFeedback(compress.NewTopK(0.05))
			efsF[i] = compress.NewErrorFeedback(compress.NewTopK(0.9))
		}
		reseed := func(seed int64) {
			fresh := randBufs(d, rows, cols, seed)
			for i := range bufs {
				if rt.LocalRank(g.Ranks()[i]) {
					bufs[i].CopyFrom(fresh[i])
				}
			}
		}

		g.AllReduce(bufs, 1/float64(d))
		ge.AllReduce(bufs, 1) // plain sum on the embedding class
		reseed(23)
		g.Broadcast(bufs, 2)
		for iter := 0; iter < 3; iter++ { // residuals must carry across calls
			reseed(int64(31 + iter))
			g.AllReduceCompressed(bufs, efsP, 1/float64(d))
		}
		reseed(41)
		g.AllReduceCompressed(bufs, efsS, 1/float64(d))
		reseed(43)
		g.AllReduceCompressed(bufs, efsF, 1/float64(d))
		return procResult{bufs: bufs, stats: rt.Stats(), sp: rt.SparseReduceStats()}
	}

	// Oracle run over shared memory.
	memRT := NewRuntime(topo, nil, nil)
	want := script(memRT)
	memRT.Close()

	// Socket grid: one runtime per rank, each in its own goroutine.
	trs := newSocketGrid(t, "unix", d)
	results := make([]procResult, d)
	var wg sync.WaitGroup
	for r := 0; r < d; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rt := NewRuntime(topo, trs[r], nil)
			defer rt.Close()
			results[r] = script(rt)
		}(r)
	}
	wg.Wait()

	// Each rank's local buffer must match the oracle bit for bit.
	for r := 0; r < d; r++ {
		if !results[r].bufs[r].Equal(want.bufs[r], 0) {
			t.Errorf("rank %d local buffer differs from in-memory oracle", r)
		}
	}

	// Per-class Stats, summed over rank processes, must equal the
	// in-memory totals exactly — same for the sparse-reduction counters.
	var agg Stats
	var aggSp SparseReduceStats
	for r := 0; r < d; r++ {
		for c := range agg {
			agg[c].Bytes += results[r].stats[c].Bytes
			agg[c].Messages += results[r].stats[c].Messages
			agg[c].Steps += results[r].stats[c].Steps
		}
		aggSp.SparseOps += results[r].sp.SparseOps
		aggSp.DenseFallbacks += results[r].sp.DenseFallbacks
	}
	if agg != want.stats {
		t.Errorf("aggregated socket stats %+v != mem stats %+v", agg, want.stats)
	}
	if aggSp != want.sp {
		t.Errorf("aggregated sparse-reduce stats %+v != mem %+v", aggSp, want.sp)
	}
}

// TestSocketRendezvousTimeout pins that a missing peer fails the
// constructor within the dial deadline instead of hanging.
func TestSocketRendezvousTimeout(t *testing.T) {
	addrs, _ := socketAddrs(t, "unix", 2)
	start := time.Now()
	_, err := NewSocketTransport(SocketConfig{
		Network: "unix", Rank: 0, World: 2, Addrs: addrs,
		DialTimeout: 300 * time.Millisecond,
	})
	if err == nil {
		t.Fatal("rendezvous with absent peer succeeded")
	}
	if took := time.Since(start); took > 10*time.Second {
		t.Fatalf("rendezvous failure took %v", took)
	}
}

// TestSocketHandshakeRejects pins the inbound handshake validation: a
// stream announcing garbage is closed without an ack.
func TestSocketHandshakeRejects(t *testing.T) {
	addrs, _ := socketAddrs(t, "unix", 1)
	tr, err := NewSocketTransport(SocketConfig{Network: "unix", Rank: 0, World: 1, Addrs: addrs})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	expectReject := func(name string, hs []byte) {
		t.Helper()
		conn, err := net.Dial("unix", addrs[0])
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		if _, err := conn.Write(hs); err != nil {
			t.Fatal(err)
		}
		conn.SetReadDeadline(time.Now().Add(5 * time.Second))
		var ack [1]byte
		if _, err := io.ReadFull(conn, ack[:]); err == nil {
			t.Fatalf("%s: handshake was acked", name)
		}
	}

	bad := make([]byte, handshakeLen)
	copy(bad, "NOPE")
	expectReject("bad magic", bad)

	wrongWorld := make([]byte, handshakeLen)
	copy(wrongWorld, sockMagic[:])
	wrongWorld[4] = wireVersion
	wrongWorld[5] = 9 // world 9, expected 1
	expectReject("wrong world", wrongWorld)
}

// TestSocketCloseIdempotent pins the clean-shutdown contract: queued
// frames flush, Close returns without hanging, and double Close is safe.
func TestSocketCloseIdempotent(t *testing.T) {
	trs := newSocketGrid(t, "unix", 2)
	trs[0].Send(ClassDP, 0, 1, Msg{Bytes: 10})
	if got := trs[1].Recv(ClassDP, 1, 0); got.Bytes != 10 {
		t.Fatalf("bytes %d", got.Bytes)
	}
	done := make(chan struct{})
	go func() {
		trs[0].Close()
		trs[1].Close()
		trs[0].Close() // idempotent
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("Close hung")
	}
}

// TestCoordinatorBarriers drives the two-barrier protocol end to end
// with in-process clients.
func TestCoordinatorBarriers(t *testing.T) {
	const world = 3
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	coord := NewCoordinator(world, ln)
	defer coord.Close()

	var wg sync.WaitGroup
	errs := make([]error, world)
	for r := 0; r < world; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			peer, peers, err := JoinCoordinator("tcp", coord.Addr(), r, world, fmt.Sprintf("addr-%d", r), 10*time.Second)
			if err != nil {
				errs[r] = err
				return
			}
			for i, p := range peers {
				if p != fmt.Sprintf("addr-%d", i) {
					errs[r] = fmt.Errorf("peer table %v", peers)
					return
				}
			}
			rep := RankReport{LossSum: float64(r) * 1.25, FrameBytes: int64(1000 * r)}
			rep.Stats[ClassDP].Bytes = int64(10 * r)
			errs[r] = peer.Report(r, rep, 10*time.Second)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	reports, err := coord.Wait()
	if err != nil {
		t.Fatal(err)
	}
	for r, rep := range reports {
		if rep.LossSum != float64(r)*1.25 || rep.FrameBytes != int64(1000*r) || rep.Stats[ClassDP].Bytes != int64(10*r) {
			t.Fatalf("rank %d report %+v", r, rep)
		}
	}
}

// TestCoordinatorRejectsBadJoin pins fail-fast on protocol violations.
func TestCoordinatorRejectsBadJoin(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	coord := NewCoordinator(2, ln)
	defer coord.Close()

	// World mismatch: the join must error, and the run must fail.
	if _, _, err := JoinCoordinator("tcp", coord.Addr(), 0, 5, "x", 5*time.Second); err == nil {
		t.Fatal("world-mismatch join succeeded")
	}
	if _, err := coord.Wait(); err == nil {
		t.Fatal("coordinator survived world mismatch")
	}
}
