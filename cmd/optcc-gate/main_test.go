package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func row(op string, ns float64, allocs int64) benchRow {
	return benchRow{Op: op, NsPerOp: ns, AllocsPerOp: allocs}
}

func TestCheckFilePassesWithinTolerance(t *testing.T) {
	base := []benchRow{row("a", 1000, 0), row("b", 2000, 3)}
	fresh := []benchRow{row("a", 1900, 1), row("b", 3900, 4)} // <2×, +1 alloc
	if vs := checkFile("f", base, fresh, 1.0, 1); len(vs) != 0 {
		t.Fatalf("expected pass, got %v", vs)
	}
}

func TestCheckFileFlagsNsRegression(t *testing.T) {
	base := []benchRow{row("a", 1000, 0)}
	fresh := []benchRow{row("a", 2100, 0)}
	vs := checkFile("f", base, fresh, 1.0, 1)
	if len(vs) != 1 || !strings.Contains(vs[0].Reason, "ns/op") {
		t.Fatalf("expected one ns/op violation, got %v", vs)
	}
}

func TestCheckFileFlagsAllocRegression(t *testing.T) {
	base := []benchRow{row("a", 1000, 0)}
	fresh := []benchRow{row("a", 1000, 2)} // slack is 1
	vs := checkFile("f", base, fresh, 1.0, 1)
	if len(vs) != 1 || !strings.Contains(vs[0].Reason, "allocs/op") {
		t.Fatalf("expected one allocs violation, got %v", vs)
	}
}

func TestCheckFileFlagsMissingRowAndSpeedupCollapse(t *testing.T) {
	base := []benchRow{
		row("gone", 1000, 0),
		{Op: "sp", NsPerOp: 1000, Speedup: 3.4},
	}
	fresh := []benchRow{{Op: "sp", NsPerOp: 1000, Speedup: 1.5}} // < 3.4/2
	vs := checkFile("f", base, fresh, 1.0, 1)
	if len(vs) != 2 {
		t.Fatalf("expected 2 violations, got %v", vs)
	}
	if !strings.Contains(vs[0].Reason, "missing") || !strings.Contains(vs[1].Reason, "speedup") {
		t.Fatalf("unexpected reasons: %v", vs)
	}
}

func TestCheckFileNoisyRowsGateRatiosOnly(t *testing.T) {
	noisy := func(ns float64, allocs int64, ratio float64, wire int64) benchRow {
		return benchRow{Op: "sock", NsPerOp: ns, AllocsPerOp: allocs,
			WallclockNoisy: true, RatioVsMem: ratio, WireBytesOp: wire}
	}
	base := []benchRow{noisy(1000, 5, 10, 64512)}

	// Wild wall-clock and alloc swings pass as long as the portable
	// signals hold.
	fresh := []benchRow{noisy(50000, 900, 39, 64512)} // < 10×4
	if vs := checkFile("f", base, fresh, 1.0, 1); len(vs) != 0 {
		t.Fatalf("expected pass, got %v", vs)
	}

	fresh = []benchRow{noisy(1000, 5, 41, 64512)} // ratio > 10×4
	vs := checkFile("f", base, fresh, 1.0, 1)
	if len(vs) != 1 || !strings.Contains(vs[0].Reason, "ratio_vs_mem") {
		t.Fatalf("expected one ratio violation, got %v", vs)
	}

	fresh = []benchRow{noisy(1000, 5, 10, 64513)} // wire accounting drift
	vs = checkFile("f", base, fresh, 1.0, 1)
	if len(vs) != 1 || !strings.Contains(vs[0].Reason, "wire_bytes_op") {
		t.Fatalf("expected one wire-bytes violation, got %v", vs)
	}
}

func TestCheckFileServeRowsGateQPSHitRateAndTightAllocs(t *testing.T) {
	serve := func(ns float64, allocs int64, qps, hitRate float64, tight bool) benchRow {
		return benchRow{Op: "serve/cached", NsPerOp: ns, AllocsPerOp: allocs,
			WallclockNoisy: true, QPS: qps, CacheHitRate: hitRate, AllocsTight: tight}
	}
	base := []benchRow{serve(100, 0, 4_000_000, 0.999756, true)}

	// Wall clock may swing wildly; qps above a quarter of baseline, the
	// exact hit rate, and zero allocs pass.
	fresh := []benchRow{serve(350, 0, 1_100_000, 0.999756, true)}
	if vs := checkFile("f", base, fresh, 1.0, 1); len(vs) != 0 {
		t.Fatalf("expected pass, got %v", vs)
	}

	fresh = []benchRow{serve(100, 0, 900_000, 0.999756, true)} // < baseline/4
	vs := checkFile("f", base, fresh, 1.0, 1)
	if len(vs) != 1 || !strings.Contains(vs[0].Reason, "qps") {
		t.Fatalf("expected one qps violation, got %v", vs)
	}

	fresh = []benchRow{serve(100, 0, 4_000_000, 0.99, true)} // hit rate drifted
	vs = checkFile("f", base, fresh, 1.0, 1)
	if len(vs) != 1 || !strings.Contains(vs[0].Reason, "cache_hit_rate") {
		t.Fatalf("expected one hit-rate violation, got %v", vs)
	}

	fresh = []benchRow{serve(100, 2, 4_000_000, 0.999756, true)} // hit path allocated
	vs = checkFile("f", base, fresh, 1.0, 1)
	if len(vs) != 1 || !strings.Contains(vs[0].Reason, "allocs/op") {
		t.Fatalf("expected one allocs violation, got %v", vs)
	}

	// Without allocs_tight, noisy rows still tolerate alloc swings.
	base = []benchRow{serve(100, 300, 4_000_000, 0, false)}
	fresh = []benchRow{serve(100, 900, 4_000_000, 0, false)}
	if vs := checkFile("f", base, fresh, 1.0, 1); len(vs) != 0 {
		t.Fatalf("expected pass for untight noisy allocs, got %v", vs)
	}
}

func TestCheckFileHitRateGatesOnTightRowsToo(t *testing.T) {
	tight := func(hitRate float64) benchRow {
		return benchRow{Op: "price/hit", NsPerOp: 100, CacheHitRate: hitRate}
	}
	base := []benchRow{tight(1.0)}
	fresh := []benchRow{tight(0.9)}
	vs := checkFile("f", base, fresh, 1.0, 1)
	if len(vs) != 1 || !strings.Contains(vs[0].Reason, "cache_hit_rate") {
		t.Fatalf("expected one hit-rate violation, got %v", vs)
	}
	if vs := checkFile("f", base, []benchRow{tight(1.0)}, 1.0, 1); len(vs) != 0 {
		t.Fatalf("expected pass, got %v", vs)
	}
}

func TestCheckFileModeDisambiguatesRows(t *testing.T) {
	base := []benchRow{
		{Op: "iter", Mode: "blocking", NsPerOp: 1000},
		{Op: "iter", Mode: "overlapped", NsPerOp: 500},
	}
	fresh := []benchRow{
		{Op: "iter", Mode: "blocking", NsPerOp: 1100},
		{Op: "iter", Mode: "overlapped", NsPerOp: 5000}, // regressed
	}
	vs := checkFile("f", base, fresh, 1.0, 1)
	if len(vs) != 1 || vs[0].Row != "iter|overlapped" {
		t.Fatalf("expected the overlapped row to fail, got %v", vs)
	}
}

func writeTrail(t *testing.T, path string, rows any) {
	t.Helper()
	data, err := json.Marshal(rows)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestRunCheckEndToEnd(t *testing.T) {
	baseDir, freshDir := t.TempDir(), t.TempDir()
	writeTrail(t, filepath.Join(baseDir, "BENCH_x.json"), []benchRow{row("a", 1000, 0)})
	writeTrail(t, filepath.Join(freshDir, "BENCH_x.json"), []benchRow{row("a", 1200, 0)})
	var buf bytes.Buffer
	if err := runCheck(&buf, baseDir, freshDir, 1.0, 1); err != nil {
		t.Fatalf("expected pass: %v\n%s", err, buf.String())
	}

	// A missing fresh trail is a violation, not a silent skip.
	if err := runCheck(&buf, baseDir, t.TempDir(), 1.0, 1); err == nil {
		t.Fatal("expected failure for missing fresh trail")
	}

	// An empty baseline directory is a configuration error.
	if err := runCheck(&buf, t.TempDir(), freshDir, 1.0, 1); err == nil {
		t.Fatal("expected failure for missing baselines")
	}
}

func TestMergePGOAndSummary(t *testing.T) {
	dir := t.TempDir()
	defPath := filepath.Join(dir, "def.json")
	pgoPath := filepath.Join(dir, "pgo.json")
	outPath := filepath.Join(dir, "merged.json")
	// The default trail carries a field the gate does not model; the
	// merge must preserve it.
	writeTrail(t, defPath, []map[string]any{
		{"op": "a", "ns_op": 1000.0, "allocs_op": 0, "wire_bytes_op": 42, "speedup_vs_densified": 3.4},
		{"op": "b", "ns_op": 2000.0, "allocs_op": 1},
	})
	writeTrail(t, pgoPath, []map[string]any{
		{"op": "a", "ns_op": 900.0, "allocs_op": 0},
	})
	if err := runMergePGO(defPath, pgoPath, outPath); err != nil {
		t.Fatal(err)
	}
	merged, err := loadRows(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if merged[0].PGONsPerOp != 900 || merged[0].PGODeltaPct != -10 {
		t.Fatalf("bad merge: %+v", merged[0])
	}
	if merged[1].PGONsPerOp != 0 {
		t.Fatalf("row without a PGO twin must stay unfilled: %+v", merged[1])
	}
	raw, err := loadRaw(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := raw[0]["wire_bytes_op"]; !ok {
		t.Fatal("merge dropped an unmodeled field")
	}

	var buf bytes.Buffer
	if err := runPGOSummary(&buf, outPath); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{"| a | 1000 | 900 | -10.00% | 3.40x |", "| b | 2000 | — | — | — |"} {
		if !strings.Contains(s, want) {
			t.Fatalf("summary missing %q:\n%s", want, s)
		}
	}
}
