// Command optcc-gate is the perf-regression gate over the repo's
// machine-readable benchmark trails (BENCH_*.json). CI regenerates the
// trails and fails the build when they drift from the committed
// baselines under bench/.
//
// Four modes:
//
//	optcc-gate -check -baseline bench -fresh . [-tolerance 1.0] [-allocs-slack 1]
//	    Compare every bench/BENCH_*.json against its freshly generated
//	    counterpart. A row fails when its ns/op exceeds baseline by more
//	    than the tolerance factor, its allocs/op exceed baseline by more
//	    than the absolute slack, its sparse-vs-densified speedup falls
//	    below half the baseline's, or the row is missing entirely.
//	    Exit status 1 on any failure.
//
//	optcc-gate -merge-pgo BENCH_sparse.json -pgo BENCH_sparse_pgo.json -out merged.json
//	    Join a default build's rows with a -pgo=auto build's rows by op
//	    name, filling pgo_ns_op and pgo_delta_pct on each row.
//
//	optcc-gate -pgo-summary merged.json
//	    Render the default-vs-PGO comparison as a Markdown table
//	    (append to $GITHUB_STEP_SUMMARY in CI).
//
//	optcc-gate -validate-trace trace.json
//	    Check a Chrome trace-event JSON file (optcc-train -trace /
//	    optcc-sim -trace output, or the two merged) against the
//	    exporters' invariants and print its event summary.
//
// Tolerance semantics: ns/op comparisons are wall-time on shared
// runners, so the gate is a coarse guardrail, not a precision
// instrument. The default tolerance of 1.0 allows fresh ≤ 2× baseline;
// CI uses -tolerance 3 (≤ 4×) to absorb cross-machine and single-shot
// variance while still catching order-of-magnitude regressions.
// Allocation counts are machine-independent, so they gate with a
// 1-alloc absolute slack (testing.Benchmark occasionally attributes a
// stray allocation to short runs); real steady-state pins are enforced
// exactly by the -race zero-alloc tests.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/obs"
)

// benchRow is the subset of fields the gate inspects. Files are also
// kept as raw maps (see loadRaw) so -merge-pgo round-trips fields the
// gate does not know about.
type benchRow struct {
	Op          string  `json:"op"`
	Mode        string  `json:"mode"`
	NsPerOp     float64 `json:"ns_op"`
	AllocsPerOp int64   `json:"allocs_op"`
	Speedup     float64 `json:"speedup_vs_densified"`
	PGONsPerOp  float64 `json:"pgo_ns_op"`
	PGODeltaPct float64 `json:"pgo_delta_pct"`
	// WallclockNoisy marks rows (the transport trail's socket lane, the
	// serve trail's concurrent lanes) whose raw ns/op and allocs/op must
	// not gate: kernel socket I/O and scheduler-dependent batching on a
	// shared runner swing far beyond the tolerance. For those rows only
	// the machine-portable signals gate — the socket/mem timing ratio,
	// the exact wire accounting, the throughput floor (qps ≥ baseline/4),
	// and the deterministic cache-hit rate.
	WallclockNoisy bool    `json:"wallclock_noisy"`
	RatioVsMem     float64 `json:"ratio_vs_mem"`
	WireBytesOp    int64   `json:"wire_bytes_op"`
	// QPS is the serve trail's throughput. Wall-clock derived, so it
	// gates as a coarse ratio: fresh must stay above a quarter of
	// baseline, catching order-of-magnitude serving regressions while
	// absorbing runner variance.
	QPS float64 `json:"qps"`
	// CacheHitRate is machine-independent by construction (the serve
	// lanes prime the cache and fix the request count, so the rate is
	// exact), so it gates tightly.
	CacheHitRate float64 `json:"cache_hit_rate"`
	// AllocsTight marks noisy rows whose allocs/op still gates with the
	// normal slack (the serve cached lane: the hit path is pinned
	// allocation-free, so its per-op allocation count stays integral-zero
	// no matter how noisy the wall clock is).
	AllocsTight bool `json:"allocs_tight"`
}

// key identifies a row within one trail file: the op name plus the
// mode discriminator the overlap trail uses (empty elsewhere).
func (r benchRow) key() string {
	if r.Mode == "" {
		return r.Op
	}
	return r.Op + "|" + r.Mode
}

func loadRows(path string) ([]benchRow, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rows []benchRow
	if err := json.Unmarshal(data, &rows); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rows, nil
}

// loadRaw parses a trail file into ordered raw maps, preserving every
// field for rewriting.
func loadRaw(path string) ([]map[string]json.RawMessage, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rows []map[string]json.RawMessage
	if err := json.Unmarshal(data, &rows); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rows, nil
}

// violation is one gate failure, phrased for a CI log.
type violation struct {
	File, Row, Reason string
}

func (v violation) String() string { return fmt.Sprintf("%s: %s: %s", v.File, v.Row, v.Reason) }

// checkFile compares one baseline trail against its fresh counterpart.
// tolerance is the allowed fractional ns/op growth (1.0 = fresh may be
// 2× baseline); allocsSlack the allowed absolute allocs/op growth.
func checkFile(name string, baseline, fresh []benchRow, tolerance float64, allocsSlack int64) []violation {
	var out []violation
	freshBy := make(map[string]benchRow, len(fresh))
	for _, r := range fresh {
		freshBy[r.key()] = r
	}
	for _, b := range baseline {
		f, ok := freshBy[b.key()]
		if !ok {
			out = append(out, violation{name, b.key(), "row missing from fresh results (baseline coverage must not shrink)"})
			continue
		}
		if b.CacheHitRate > 0 {
			if diff := f.CacheHitRate - b.CacheHitRate; diff > 1e-3 || diff < -1e-3 {
				out = append(out, violation{name, b.key(),
					fmt.Sprintf("cache_hit_rate %.6f drifted from baseline %.6f (deterministic by construction, tolerance 0.001)",
						f.CacheHitRate, b.CacheHitRate)})
			}
		}
		if b.WallclockNoisy {
			// Ratios of two same-run timings port across machines; wire
			// accounting and the primed cache-hit rate are deterministic;
			// qps gates as a coarse floor. These gate; raw wall clock does
			// not, and allocs only when the row opts in via allocs_tight.
			if b.RatioVsMem > 0 && f.RatioVsMem > b.RatioVsMem*4 {
				out = append(out, violation{name, b.key(),
					fmt.Sprintf("ratio_vs_mem %.1fx exceeds baseline %.1fx × 4", f.RatioVsMem, b.RatioVsMem)})
			}
			if b.WireBytesOp > 0 && f.WireBytesOp != b.WireBytesOp {
				out = append(out, violation{name, b.key(),
					fmt.Sprintf("wire_bytes_op %d != baseline %d (wire accounting must be exact)", f.WireBytesOp, b.WireBytesOp)})
			}
			if b.QPS > 0 && f.QPS < b.QPS/4 {
				out = append(out, violation{name, b.key(),
					fmt.Sprintf("qps %.0f fell below baseline %.0f / 4 (serving throughput regressed)", f.QPS, b.QPS)})
			}
			if b.AllocsTight && f.AllocsPerOp > b.AllocsPerOp+allocsSlack {
				out = append(out, violation{name, b.key(),
					fmt.Sprintf("allocs/op %d exceeds baseline %d + slack %d", f.AllocsPerOp, b.AllocsPerOp, allocsSlack)})
			}
			continue
		}
		if limit := b.NsPerOp * (1 + tolerance); f.NsPerOp > limit {
			out = append(out, violation{name, b.key(),
				fmt.Sprintf("ns/op %.0f exceeds baseline %.0f × %.2f = %.0f", f.NsPerOp, b.NsPerOp, 1+tolerance, limit)})
		}
		if f.AllocsPerOp > b.AllocsPerOp+allocsSlack {
			out = append(out, violation{name, b.key(),
				fmt.Sprintf("allocs/op %d exceeds baseline %d + slack %d", f.AllocsPerOp, b.AllocsPerOp, allocsSlack)})
		}
		// Speedup is a ratio of two same-machine timings, so it is far
		// more portable than raw ns/op; halving it means the sparse path
		// structurally regressed relative to the densified oracle.
		if b.Speedup > 0 && f.Speedup < b.Speedup/2 {
			out = append(out, violation{name, b.key(),
				fmt.Sprintf("speedup_vs_densified %.2fx fell below half of baseline %.2fx", f.Speedup, b.Speedup)})
		}
	}
	return out
}

// runCheck gates every bench/BENCH_*.json baseline against freshDir.
func runCheck(w io.Writer, baselineDir, freshDir string, tolerance float64, allocsSlack int64) error {
	paths, err := filepath.Glob(filepath.Join(baselineDir, "BENCH_*.json"))
	if err != nil {
		return err
	}
	if len(paths) == 0 {
		return fmt.Errorf("no BENCH_*.json baselines under %s", baselineDir)
	}
	sort.Strings(paths)
	var violations []violation
	checked := 0
	for _, bp := range paths {
		name := filepath.Base(bp)
		baseline, err := loadRows(bp)
		if err != nil {
			return err
		}
		fresh, err := loadRows(filepath.Join(freshDir, name))
		if err != nil {
			violations = append(violations, violation{name, "-", fmt.Sprintf("fresh trail unreadable: %v", err)})
			continue
		}
		vs := checkFile(name, baseline, fresh, tolerance, allocsSlack)
		violations = append(violations, vs...)
		checked += len(baseline)
		fmt.Fprintf(w, "gate: %-24s %3d rows, %d violations\n", name, len(baseline), len(vs))
	}
	if len(violations) > 0 {
		fmt.Fprintf(w, "\nFAIL: %d violation(s) across %d baseline rows:\n", len(violations), checked)
		for _, v := range violations {
			fmt.Fprintf(w, "  %s\n", v)
		}
		return fmt.Errorf("%d benchmark regression(s)", len(violations))
	}
	fmt.Fprintf(w, "PASS: %d baseline rows within tolerance (ns/op ≤ %.2f×, allocs/op ≤ +%d)\n",
		checked, 1+tolerance, allocsSlack)
	return nil
}

// runMergePGO joins defaultPath's rows with pgoPath's by key, filling
// the pgo_ns_op / pgo_delta_pct columns, and writes the merged trail.
func runMergePGO(defaultPath, pgoPath, outPath string) error {
	raw, err := loadRaw(defaultPath)
	if err != nil {
		return err
	}
	defRows, err := loadRows(defaultPath)
	if err != nil {
		return err
	}
	pgoRows, err := loadRows(pgoPath)
	if err != nil {
		return err
	}
	pgoBy := make(map[string]benchRow, len(pgoRows))
	for _, r := range pgoRows {
		pgoBy[r.key()] = r
	}
	for i, d := range defRows {
		p, ok := pgoBy[d.key()]
		if !ok || d.NsPerOp == 0 {
			continue
		}
		ns, _ := json.Marshal(p.NsPerOp)
		delta, _ := json.Marshal(round2((p.NsPerOp - d.NsPerOp) / d.NsPerOp * 100))
		raw[i]["pgo_ns_op"] = ns
		raw[i]["pgo_delta_pct"] = delta
	}
	data, err := json.MarshalIndent(raw, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(outPath, append(data, '\n'), 0o644)
}

func round2(v float64) float64 { return float64(int64(v*100+sign(v)*0.5)) / 100 }

func sign(v float64) float64 {
	if v < 0 {
		return -1
	}
	return 1
}

// runValidateTrace checks that a Chrome trace-event JSON file (from
// optcc-train -trace or optcc-sim -trace, or the two merged) satisfies
// the exporters' invariants, and prints its summary — CI's guard that
// the archived trace artifact actually loads in Perfetto.
func runValidateTrace(w io.Writer, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	check, err := obs.ValidateTrace(f)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if check.Events == 0 {
		return fmt.Errorf("%s: trace holds no events", path)
	}
	fmt.Fprintf(w, "trace %s OK: %d events, %d metadata records, categories: %s\n",
		filepath.Base(path), check.Events, check.Metas, strings.Join(check.Categories, ", "))
	return nil
}

// runPGOSummary renders a merged trail as a Markdown table for the CI
// job summary.
func runPGOSummary(w io.Writer, path string) error {
	rows, err := loadRows(path)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "### default vs PGO (`%s`)\n\n", filepath.Base(path))
	fmt.Fprintln(w, "| op | default ns/op | pgo ns/op | Δ% | speedup vs densified |")
	fmt.Fprintln(w, "|---|---:|---:|---:|---:|")
	for _, r := range rows {
		pgoNs, delta, sp := "—", "—", "—"
		if r.PGONsPerOp > 0 {
			pgoNs = fmt.Sprintf("%.0f", r.PGONsPerOp)
			delta = fmt.Sprintf("%+.2f%%", r.PGODeltaPct)
		}
		if r.Speedup > 0 {
			sp = fmt.Sprintf("%.2fx", r.Speedup)
		}
		fmt.Fprintf(w, "| %s | %.0f | %s | %s | %s |\n", r.key(), r.NsPerOp, pgoNs, delta, sp)
	}
	return nil
}

func main() {
	check := flag.Bool("check", false, "gate fresh BENCH_*.json trails against committed baselines")
	baselineDir := flag.String("baseline", "bench", "directory holding the committed baseline trails")
	freshDir := flag.String("fresh", ".", "directory holding the freshly generated trails")
	tolerance := flag.Float64("tolerance", 1.0, "allowed fractional ns/op growth over baseline (1.0 = 2×)")
	allocsSlack := flag.Int64("allocs-slack", 1, "allowed absolute allocs/op growth over baseline")
	mergePGO := flag.String("merge-pgo", "", "default-build trail to merge PGO columns into")
	pgoPath := flag.String("pgo", "", "PGO-build trail (with -merge-pgo)")
	outPath := flag.String("out", "", "output path for the merged trail (with -merge-pgo)")
	pgoSummary := flag.String("pgo-summary", "", "merged trail to render as a Markdown summary table")
	validateTrace := flag.String("validate-trace", "", "Chrome trace-event JSON file to validate (optcc-train/optcc-sim -trace output)")
	flag.Parse()

	var err error
	switch {
	case *check:
		err = runCheck(os.Stdout, *baselineDir, *freshDir, *tolerance, *allocsSlack)
	case *mergePGO != "":
		if *pgoPath == "" || *outPath == "" {
			err = fmt.Errorf("-merge-pgo needs -pgo and -out")
		} else {
			err = runMergePGO(*mergePGO, *pgoPath, *outPath)
		}
	case *pgoSummary != "":
		err = runPGOSummary(os.Stdout, *pgoSummary)
	case *validateTrace != "":
		err = runValidateTrace(os.Stdout, *validateTrace)
	default:
		err = fmt.Errorf("pick a mode: -check, -merge-pgo, -pgo-summary, or -validate-trace (see -h)")
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "optcc-gate:", err)
		os.Exit(1)
	}
}
