package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"testing"

	"repro/internal/autotune"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/sim"
)

// autotuneBenchResult is one row of BENCH_autotune.json — the perf
// trail for the plan-space search engine. The price row is a normal
// gate row: allocs/candidate is machine-independent and gates tightly,
// ns/op is the usual coarse guardrail. The search row spans hundreds of
// pricings of wall time, so it carries wallclock_noisy (candidates/sec
// is informational, not gated) and gates on its deterministic byproduct
// instead: wire_bytes_op is the winner's predicted per-iteration wire
// volume, identical on every machine for the fixed seed.
type autotuneBenchResult struct {
	Op               string  `json:"op"`
	Iterations       int     `json:"iterations"`
	NsPerOp          float64 `json:"ns_op"`
	BytesPerOp       int64   `json:"bytes_op"`
	AllocsPerOp      int64   `json:"allocs_op"`
	CandidatesPerSec float64 `json:"candidates_per_sec,omitempty"`
	WallclockNoisy   bool    `json:"wallclock_noisy,omitempty"`
	WireBytesOp      int64   `json:"wire_bytes_op,omitempty"`
}

// runAutotuneBenchmarks measures the two costs that make the autotuner
// usable as an inner loop — pricing one candidate on the frozen
// sequence (plan compile + duration assignment + three makespan
// re-solves) and searching the whole default space — and writes
// BENCH_autotune.json.
func runAutotuneBenchmarks(w io.Writer, outPath, benchtime string) error {
	testing.Init()
	if err := flag.Set("test.benchtime", benchtime); err != nil {
		return fmt.Errorf("benchtime %q: %w", benchtime, err)
	}
	var results []autotuneBenchResult

	base := sim.PaperScenario(cluster.GPT25B, core.Baseline())
	ev, err := sim.NewEvaluator(base)
	if err != nil {
		return err
	}

	// Per-candidate pricing. Warm once (validates the config and fills
	// the evaluator's buffers), then measure the steady state.
	cfg := core.CBFESC()
	if _, err := ev.Price(cfg, 0); err != nil {
		return err
	}
	pr := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ev.Price(cfg, 0)
		}
	})
	ns := float64(pr.T.Nanoseconds()) / float64(pr.N)
	results = append(results, autotuneBenchResult{
		Op: "price/cbfesc", Iterations: pr.N, NsPerOp: ns,
		BytesPerOp: pr.AllocedBytesPerOp(), AllocsPerOp: pr.AllocsPerOp(),
		CandidatesPerSec: 1e9 / ns,
	})

	// Full default-space search at the paper's PP4 depth.
	sp := autotune.DefaultSpace(4)
	qm := autotune.DefaultQualityModel()
	opts := autotune.Options{Seed: 1, Top: 12}
	res, err := autotune.Search(ev, sp, qm, opts)
	if err != nil {
		return err
	}
	sr := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, _ = autotune.Search(ev, sp, qm, opts)
		}
	})
	nsSearch := float64(sr.T.Nanoseconds()) / float64(sr.N)
	e := res.Winner.Estimate
	results = append(results, autotuneBenchResult{
		Op: "search/default-space-pp4", Iterations: sr.N, NsPerOp: nsSearch,
		BytesPerOp: sr.AllocedBytesPerOp(), AllocsPerOp: sr.AllocsPerOp(),
		CandidatesPerSec: float64(res.Priced) * 1e9 / nsSearch,
		WallclockNoisy:   true,
		WireBytesOp:      e.PPBytesPerReplica + e.DPBytes + e.EmbBytes,
	})

	fmt.Fprintf(w, "### autotune-bench (%d ops → %s)\n\n", len(results), outPath)
	fmt.Fprintf(w, "%-28s %14s %12s %10s %16s %16s\n",
		"op", "ns/op", "B/op", "allocs/op", "candidates/s", "wire B/op")
	for _, r := range results {
		fmt.Fprintf(w, "%-28s %14.0f %12d %10d %16.0f %16d\n",
			r.Op, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp, r.CandidatesPerSec, r.WireBytesOp)
	}
	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(outPath, append(data, '\n'), 0o644)
}
