// Command optcc-bench regenerates the paper's tables and figures. Each
// experiment prints a text table; -exp all regenerates everything (the
// content of EXPERIMENTS.md's measured sections). -collective-bench
// instead micro-benchmarks the collective runtime, -pipeline-bench the
// 1F1B pipeline executor, -plan-bench the compiled-plan API, and
// -overlap-bench blocking vs overlapped bucketed DP synchronization, and
// -obs-bench the span-recorder/metrics overhead, and -autotune-bench
// the plan-autotuner (per-candidate pricing cost plus the full
// default-space search); all write the machine-readable perf trails
// (BENCH_collective.json / BENCH_pipeline.json / BENCH_plan.json /
// BENCH_overlap.json / BENCH_obs.json / BENCH_autotune.json) that CI
// archives.
//
// Examples:
//
//	optcc-bench -exp table2
//	optcc-bench -exp fig3 -quick
//	optcc-bench -exp all -out results.txt
//	optcc-bench -collective-bench -benchtime 1x -bench-out BENCH_collective.json
//	optcc-bench -pipeline-bench -benchtime 1x -bench-out BENCH_pipeline.json
//	optcc-bench -plan-bench -benchtime 1x -bench-out BENCH_plan.json
//	optcc-bench -overlap-bench -bench-out BENCH_overlap.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/experiments"
	"repro/internal/prof"
)

func main() {
	exp := flag.String("exp", "all", "experiment: all or one of "+fmt.Sprint(experiments.Names()))
	quick := flag.Bool("quick", false, "use short training runs (smoke test)")
	out := flag.String("out", "", "also write results to this file")
	collBench := flag.Bool("collective-bench", false, "run collective-runtime micro-benchmarks and write machine-readable results")
	pipeBench := flag.Bool("pipeline-bench", false, "run 1F1B pipeline-executor benchmarks and write machine-readable results")
	planBench := flag.Bool("plan-bench", false, "run plan-compile benchmarks (compile ns/op + allocs/op, steady-state exec allocs) and write machine-readable results")
	overlapBench := flag.Bool("overlap-bench", false, "run blocking-vs-overlapped DP-sync benchmarks (full iterations, exposed comm time, async-handle allocs) and write machine-readable results")
	sparseBench := flag.Bool("sparse-bench", false, "run sparse-native vs densified payload-pipeline benchmarks and write machine-readable results")
	transportBench := flag.Bool("transport-bench", false, "run wire-transport benchmarks (8-rank all-reduce over MemTransport vs unix sockets) and write machine-readable results")
	obsBench := flag.Bool("obs-bench", false, "run span-recorder/metrics overhead benchmarks and write machine-readable results")
	autotuneBench := flag.Bool("autotune-bench", false, "run plan-autotuner benchmarks (per-candidate pricing cost, full default-space search) and write machine-readable results")
	serveBench := flag.Bool("serve-bench", false, "run what-if service benchmarks (cache-hit pricing, concurrent cached/uncached/coalesced lanes, real-socket HTTP) and write machine-readable results")
	serveTarget := flag.String("serve-target", "", "with -serve-bench: drive the HTTP lane against this externally started optcc-serve base URL (PGO-refresh flow) instead of an in-process listener")
	benchOut := flag.String("bench-out", "", "output path for benchmark JSON (default BENCH_collective.json / BENCH_pipeline.json / BENCH_plan.json / BENCH_overlap.json / BENCH_sparse.json)")
	benchtime := flag.String("benchtime", "1s", "per-benchmark measurement budget for the bench modes (e.g. 1s, 100x, 1x)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file (feeds the -pgo=auto lane)")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	stopProfiles, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "optcc-bench:", err)
		os.Exit(1)
	}
	// Check the flush: a truncated profile must not exit 0 (it would
	// silently poison the PGO feed).
	defer func() {
		if err := stopProfiles(); err != nil {
			fmt.Fprintln(os.Stderr, "optcc-bench:", err)
			os.Exit(1)
		}
	}()

	runBench := func(run func(io.Writer, string, string) error, defaultOut string) {
		out := *benchOut
		if out == "" {
			out = defaultOut
		}
		if err := run(os.Stdout, out, *benchtime); err != nil {
			fmt.Fprintln(os.Stderr, "optcc-bench:", err)
			os.Exit(1)
		}
	}
	if *collBench {
		runBench(runCollectiveBenchmarks, "BENCH_collective.json")
		return
	}
	if *pipeBench {
		runBench(runPipelineBenchmarks, "BENCH_pipeline.json")
		return
	}
	if *planBench {
		runBench(runPlanBenchmarks, "BENCH_plan.json")
		return
	}
	if *overlapBench {
		runBench(runOverlapBenchmarks, "BENCH_overlap.json")
		return
	}
	if *sparseBench {
		runBench(runSparseBenchmarks, "BENCH_sparse.json")
		return
	}
	if *transportBench {
		runBench(runTransportBenchmarks, "BENCH_transport.json")
		return
	}
	if *obsBench {
		runBench(runObsBenchmarks, "BENCH_obs.json")
		return
	}
	if *autotuneBench {
		runBench(runAutotuneBenchmarks, "BENCH_autotune.json")
		return
	}
	if *serveBench {
		runBench(func(w io.Writer, out, bt string) error {
			return runServeBenchmarks(w, out, bt, *serveTarget)
		}, "BENCH_serve.json")
		return
	}

	opts := experiments.DefaultOptions()
	if *quick {
		opts = experiments.QuickOptions()
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "optcc-bench:", err)
			os.Exit(1)
		}
		// Close explicitly and check: an unflushed results file must not
		// exit 0.
		defer func() {
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "optcc-bench:", err)
				os.Exit(1)
			}
		}()
		w = io.MultiWriter(os.Stdout, f)
	}

	names := experiments.Names()
	if *exp != "all" {
		if experiments.Registry[*exp] == nil {
			fmt.Fprintf(os.Stderr, "optcc-bench: unknown experiment %q (have %v)\n", *exp, names)
			os.Exit(1)
		}
		names = []string{*exp}
	}
	for _, name := range names {
		start := time.Now()
		r, err := experiments.Registry[name](opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "optcc-bench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Fprintf(w, "### %s (%.1fs)\n\n%s\n", name, time.Since(start).Seconds(), r.Render())
	}
}
