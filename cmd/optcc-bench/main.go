// Command optcc-bench regenerates the paper's tables and figures. Each
// experiment prints a text table; -exp all regenerates everything (the
// content of EXPERIMENTS.md's measured sections).
//
// Examples:
//
//	optcc-bench -exp table2
//	optcc-bench -exp fig3 -quick
//	optcc-bench -exp all -out results.txt
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment: all or one of "+fmt.Sprint(experiments.Names()))
	quick := flag.Bool("quick", false, "use short training runs (smoke test)")
	out := flag.String("out", "", "also write results to this file")
	flag.Parse()

	opts := experiments.DefaultOptions()
	if *quick {
		opts = experiments.QuickOptions()
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "optcc-bench:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	names := experiments.Names()
	if *exp != "all" {
		if experiments.Registry[*exp] == nil {
			fmt.Fprintf(os.Stderr, "optcc-bench: unknown experiment %q (have %v)\n", *exp, names)
			os.Exit(1)
		}
		names = []string{*exp}
	}
	for _, name := range names {
		start := time.Now()
		r, err := experiments.Registry[name](opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "optcc-bench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Fprintf(w, "### %s (%.1fs)\n\n%s\n", name, time.Since(start).Seconds(), r.Render())
	}
}
