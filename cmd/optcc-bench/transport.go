package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/collective"
	"repro/internal/tensor"
)

// transportBenchResult is one row of BENCH_transport.json: the same
// 8-rank ring all-reduce over the in-memory transport (the tight lane —
// ns/op and allocs/op gate against the committed baseline) and over unix
// sockets (the wall-clock-noisy lane — scheduling and kernel copies put
// raw ns/op at the mercy of the runner, so only the socket/mem ratio and
// the exact wire accounting gate; see optcc-gate).
type transportBenchResult struct {
	Op          string  `json:"op"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_op"`
	BytesPerOp  int64   `json:"bytes_op"`
	AllocsPerOp int64   `json:"allocs_op"`
	WireBytesOp int64   `json:"wire_bytes_op"`
	// FrameBytesOp is the actual framed wire volume per op (socket lane
	// only): payload images + frame headers, as opposed to the modelled
	// fp16 accounting in WireBytesOp.
	FrameBytesOp int64 `json:"frame_bytes_op,omitempty"`
	// WallclockNoisy marks rows whose ns/op must not gate (socket lane).
	WallclockNoisy bool `json:"wallclock_noisy,omitempty"`
	// RatioVsMem is ns/op divided by the mem lane's ns/op for the same
	// op — two same-machine timings, so it ports across runners.
	RatioVsMem float64 `json:"ratio_vs_mem,omitempty"`
}

// runTransportBenchmarks measures the wire-transport cost of the 8-rank
// ring all-reduce: MemTransport (zero-copy handoff) vs SocketTransport
// over unix sockets (full serialize → kernel → deserialize round trip),
// writing BENCH_transport.json.
func runTransportBenchmarks(w io.Writer, outPath, benchtime string) error {
	testing.Init()
	if err := flag.Set("test.benchtime", benchtime); err != nil {
		return fmt.Errorf("benchtime %q: %w", benchtime, err)
	}
	const d = 8
	const rows, cols = 48, 48
	var results []transportBenchResult

	topo, err := collective.NewTopology(d, 1)
	if err != nil {
		return err
	}
	newBufs := func() []*tensor.Matrix {
		bufs := make([]*tensor.Matrix, d)
		for i := range bufs {
			bufs[i] = tensor.New(rows, cols)
			for j := range bufs[i].Data {
				bufs[i].Data[j] = float64((i*131+j)%23) / 23
			}
		}
		return bufs
	}
	measure := func(op string, f func(), wire func() (bytes, frames int64), noisy bool) {
		f() // warm workspaces and (socket lane) frame buffers
		f()
		wBefore, fBefore := wire()
		var ops int64
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				f()
			}
			ops += int64(b.N)
		})
		wAfter, fAfter := wire()
		results = append(results, transportBenchResult{
			Op:             op,
			Iterations:     r.N,
			NsPerOp:        float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:     r.AllocedBytesPerOp(),
			AllocsPerOp:    r.AllocsPerOp(),
			WireBytesOp:    (wAfter - wBefore) / ops,
			FrameBytesOp:   (fAfter - fBefore) / ops,
			WallclockNoisy: noisy,
		})
	}

	// Mem lane: the tight baseline — steady state is allocation-free and
	// the ns/op gate catches hot-path regressions from the wire refactor.
	memRT := collective.NewRuntime(topo, collective.NewMemTransport(d), nil)
	memGrp := memRT.NewGroup(collective.ClassDP, topo.DPGroup(0))
	memBufs := newBufs()
	measure("allreduce/d8/mem",
		func() { memGrp.AllReduce(memBufs, 1/float64(d)) },
		func() (int64, int64) { return memRT.Stats().For(collective.ClassDP).Bytes, 0 },
		false)
	memRT.Close()

	// Socket lane: one transport + runtime per rank, full wire round trip
	// per hop. The per-rank ops run concurrently, exactly as the
	// process-per-rank grid does.
	dir, err := os.MkdirTemp("", "occ-bench")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	addrs := make([]string, d)
	for r := range addrs {
		addrs[r] = filepath.Join(dir, fmt.Sprintf("r%d.sock", r))
	}
	trs := make([]*collective.SocketTransport, d)
	errs := make([]error, d)
	var wg sync.WaitGroup
	for r := 0; r < d; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			trs[r], errs[r] = collective.NewSocketTransport(collective.SocketConfig{
				Network:     "unix",
				Rank:        r,
				World:       d,
				Addrs:       addrs,
				DialTimeout: 30 * time.Second,
			})
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			return fmt.Errorf("rank %d transport: %w", r, err)
		}
	}
	rts := make([]*collective.Runtime, d)
	grps := make([]*collective.Group, d)
	sockBufs := make([][]*tensor.Matrix, d)
	for r := 0; r < d; r++ {
		rts[r] = collective.NewRuntime(topo, trs[r], nil)
		grps[r] = rts[r].NewGroup(collective.ClassDP, topo.DPGroup(0))
		sockBufs[r] = newBufs()
	}
	sockWire := func() (int64, int64) {
		var bytes, frames int64
		for r := 0; r < d; r++ {
			bytes += trs[r].Stats().For(collective.ClassDP).Bytes
			frames += trs[r].FrameBytes()
		}
		return bytes, frames
	}
	measure("allreduce/d8/unix",
		func() {
			var owg sync.WaitGroup
			for r := 0; r < d; r++ {
				owg.Add(1)
				go func(r int) {
					defer owg.Done()
					grps[r].AllReduce(sockBufs[r], 1/float64(d))
				}(r)
			}
			owg.Wait()
		},
		sockWire, true)
	for r := 0; r < d; r++ {
		rts[r].Close()
		trs[r].Close()
	}

	// The ratio is the portable signal: two timings from the same run on
	// the same machine.
	memNs := results[0].NsPerOp
	for i := range results {
		if results[i].WallclockNoisy && memNs > 0 {
			results[i].RatioVsMem = results[i].NsPerOp / memNs
		}
	}

	fmt.Fprintf(w, "### transport-bench (%d ops → %s)\n\n", len(results), outPath)
	fmt.Fprintf(w, "%-20s %14s %12s %10s %14s %14s %10s\n",
		"op", "ns/op", "B/op", "allocs/op", "wire B/op", "frame B/op", "vs mem")
	for _, r := range results {
		ratio := "—"
		if r.RatioVsMem > 0 {
			ratio = fmt.Sprintf("%.1f×", r.RatioVsMem)
		}
		fmt.Fprintf(w, "%-20s %14.0f %12d %10d %14d %14d %10s\n",
			r.Op, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp, r.WireBytesOp, r.FrameBytesOp, ratio)
	}
	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(outPath, append(data, '\n'), 0o644)
}
