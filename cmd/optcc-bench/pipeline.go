package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"testing"

	"repro/internal/collective"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/train"
)

// pipelineBenchResult is one row of BENCH_pipeline.json — the perf trail
// of the 1F1B pipeline executor, archived by CI next to the collective
// runtime's so the repo keeps a benchmark trajectory across PRs.
type pipelineBenchResult struct {
	Op          string  `json:"op"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_op"`
	BytesPerOp  int64   `json:"bytes_op"`  // heap bytes allocated per iteration
	AllocsPerOp int64   `json:"allocs_op"` // heap allocations per iteration
	PPWireOp    int64   `json:"pp_wire_bytes_op"`
	PPMsgsOp    int64   `json:"pp_msgs_op"`
	PPStepsOp   int64   `json:"pp_steps_op"`
}

// runPipelineBenchmarks measures full training iterations on the 1F1B
// pipeline executor and on the serial in-loop oracle, in exact and
// compressed-backprop modes, and writes the results as JSON to outPath,
// echoing a table to w. The pp columns are the transport-measured
// inter-stage traffic per iteration (zero on the serial-sync-only rows
// would indicate the accounting regression this PR fixed).
func runPipelineBenchmarks(w io.Writer, outPath, benchtime string) error {
	testing.Init()
	if err := flag.Set("test.benchtime", benchtime); err != nil {
		return fmt.Errorf("benchtime %q: %w", benchtime, err)
	}
	corpus, err := data.Generate(data.DefaultConfig())
	if err != nil {
		return err
	}

	var results []pipelineBenchResult
	measure := func(op string, cfg train.Config) error {
		tr, err := train.New(cfg, corpus)
		if err != nil {
			return err
		}
		defer tr.Close()
		tr.TrainIteration() // warm workspaces, residuals, transport queues
		var before collective.Stats
		if st, ok := tr.CollectiveStats(); ok {
			before = st
		}
		var ops int64
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				tr.TrainIteration()
			}
			ops += int64(b.N)
		})
		var pp collective.ClassStats
		if st, ok := tr.CollectiveStats(); ok {
			pp = st.Sub(before).For(collective.ClassPP)
		}
		results = append(results, pipelineBenchResult{
			Op:          op,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			PPWireOp:    pp.Bytes / ops,
			PPMsgsOp:    pp.Messages / ops,
			PPStepsOp:   pp.Steps / ops,
		})
		return nil
	}

	cb := train.DefaultConfig()
	cb.Opt = core.CB()
	cb.Opt.CBRank = 3
	for _, m := range []struct {
		name string
		grid [2]int // dp, pp
		opt  train.Config
	}{
		{"1f1b/exact", [2]int{2, 4}, train.DefaultConfig()},
		{"1f1b/exact", [2]int{4, 2}, train.DefaultConfig()},
		{"1f1b/cb-r3", [2]int{2, 4}, cb},
		{"serial/exact", [2]int{2, 4}, train.DefaultConfig()},
		{"serial/cb-r3", [2]int{2, 4}, cb},
	} {
		cfg := m.opt
		cfg.DPGroups = m.grid[0]
		cfg.Stages = m.grid[1]
		if strings.HasPrefix(m.name, "serial/") {
			cfg.Engine = train.EngineSerial
		}
		op := fmt.Sprintf("%s/dp%d-pp%d", m.name, m.grid[0], m.grid[1])
		if err := measure(op, cfg); err != nil {
			return err
		}
	}

	fmt.Fprintf(w, "### pipeline-bench (%d ops → %s)\n\n", len(results), outPath)
	fmt.Fprintf(w, "%-24s %14s %12s %10s %14s %9s %9s\n",
		"op", "ns/op", "B/op", "allocs/op", "pp wire B/op", "pp msg/op", "steps/op")
	for _, r := range results {
		fmt.Fprintf(w, "%-24s %14.0f %12d %10d %14d %9d %9d\n",
			r.Op, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp, r.PPWireOp, r.PPMsgsOp, r.PPStepsOp)
	}
	blob, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(outPath, append(blob, '\n'), 0o644)
}
