package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"testing"

	"repro/internal/obs"
)

// obsBenchResult is one row of BENCH_obs.json — the observability
// overhead trail CI gates on. The contract the rows pin: a disabled
// (nil) recorder costs a branch and zero allocations, and an enabled
// recorder stays allocation-free per span (one atomic fetch-add plus a
// by-value store), so tracing can be left on in perf-sensitive runs.
type obsBenchResult struct {
	Op          string  `json:"op"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_op"`
	BytesPerOp  int64   `json:"bytes_op"`
	AllocsPerOp int64   `json:"allocs_op"`
}

// runObsBenchmarks measures the span recorder's record path disabled
// and enabled, plus the metrics-registry counter increment, and writes
// the results as JSON to outPath, echoing a table to w.
func runObsBenchmarks(w io.Writer, outPath, benchtime string) error {
	testing.Init()
	if err := flag.Set("test.benchtime", benchtime); err != nil {
		return fmt.Errorf("benchtime %q: %w", benchtime, err)
	}

	var results []obsBenchResult
	measure := func(op string, f func(b *testing.B)) {
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			f(b)
		})
		results = append(results, obsBenchResult{
			Op:          op,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		})
	}

	measure("record/disabled", func(b *testing.B) {
		var rec *obs.Recorder
		for i := 0; i < b.N; i++ {
			start := rec.Now()
			rec.Record(0, obs.PhaseFwd, obs.LinkNone, start, 0, 1, 0, i)
		}
	})
	measure("record/enabled", func(b *testing.B) {
		// Capacity b.N: the drop-newest overflow path is cheaper than a
		// store, so the honest steady-state number writes every span.
		rec := obs.NewRecorder([]string{"bench"}, b.N)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			start := rec.Now()
			rec.Record(0, obs.PhaseFwd, obs.LinkNone, start, 0, 1, 0, i)
		}
	})
	measure("counter/add", func(b *testing.B) {
		c := obs.NewRegistry().Counter("bench.counter")
		for i := 0; i < b.N; i++ {
			c.Add(1)
		}
	})

	fmt.Fprintf(w, "### obs-bench (%d ops → %s)\n\n", len(results), outPath)
	fmt.Fprintf(w, "%-32s %14s %12s %10s\n", "op", "ns/op", "B/op", "allocs/op")
	for _, r := range results {
		fmt.Fprintf(w, "%-32s %14.0f %12d %10d\n", r.Op, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
	}
	blob, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(outPath, append(blob, '\n'), 0o644)
}
