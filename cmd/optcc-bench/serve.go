package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/whatif"
)

// serveBenchResult is one row of BENCH_serve.json — the perf trail for
// the what-if service. The cache-hit pricing row gates tightly (its
// allocs/op is pinned zero and its ns/op is a normal guardrail). The
// concurrent lanes are wallclock_noisy: their qps gates as a coarse
// floor (fresh ≥ baseline/4), their cache_hit_rate gates tightly
// because it is deterministic by construction (the lane primes the
// cache serially, then issues a fixed request count, so the rate is an
// exact fraction on every machine), and the cached lane opts its
// allocs/op into tight gating via allocs_tight (a hot path that
// allocates shows up as ≥1 there no matter the machine).
type serveBenchResult struct {
	Op             string  `json:"op"`
	Iterations     int     `json:"iterations"`
	NsPerOp        float64 `json:"ns_op"`
	BytesPerOp     int64   `json:"bytes_op"`
	AllocsPerOp    int64   `json:"allocs_op"`
	QPS            float64 `json:"qps,omitempty"`
	CacheHitRate   float64 `json:"cache_hit_rate,omitempty"`
	Coalesced      int64   `json:"coalesced,omitempty"`
	Batches        int64   `json:"batches,omitempty"`
	Priced         int64   `json:"priced,omitempty"`
	WallclockNoisy bool    `json:"wallclock_noisy,omitempty"`
	AllocsTight    bool    `json:"allocs_tight,omitempty"`
}

// minServeQPS is the headline floor the cached serving lanes must
// clear at generation time: 10k priced queries/sec on the 4-core CI
// VM. The in-process cached lane clears it by orders of magnitude (the
// hit path is a sub-µs map lookup); the real-socket lane carries the
// HTTP stack and still must hold the floor.
const minServeQPS = 10_000

func serveScenario() sim.Scenario {
	return sim.PaperScenario(cluster.GPT25B, core.Baseline())
}

// estimatesEqual is bit-exact Estimate equality without the interface
// boxing reflect.DeepEqual would do — the cached lane verifies every
// response on the measured path, and that check must not charge
// allocations to the allocs_tight row.
func estimatesEqual(a, b sim.Estimate) bool {
	if a.IterationSec != b.IterationSec ||
		a.ExposedPPSec != b.ExposedPPSec ||
		a.ExposedDPSec != b.ExposedDPSec ||
		a.ExposedEmbSec != b.ExposedEmbSec ||
		a.PPBytesPerReplica != b.PPBytesPerReplica ||
		a.DPBytes != b.DPBytes ||
		a.EmbBytes != b.EmbBytes ||
		len(a.Buckets) != len(b.Buckets) {
		return false
	}
	for i := range a.Buckets {
		if a.Buckets[i] != b.Buckets[i] {
			return false
		}
	}
	return true
}

// laneStats is one concurrent lane's outcome: wall time plus the
// allocation deltas attributed to the measured window.
type laneStats struct {
	n       int
	wall    time.Duration
	mallocs int64
	bytes   int64
}

func (s laneStats) nsPerOp() float64 { return float64(s.wall.Nanoseconds()) / float64(s.n) }
func (s laneStats) qps() float64     { return float64(s.n) / s.wall.Seconds() }

// runLane drives n ops across GOMAXPROCS workers (at least 4 — the
// lanes measure concurrency structure, and coalescing/batching need
// overlapping requests even on a small VM), timing the whole window
// and attributing its allocations per op. op receives the global op
// index.
func runLane(n int, op func(i int) error) (laneStats, error) {
	workers := runtime.GOMAXPROCS(0)
	if workers < 4 {
		workers = 4
	}
	var (
		wg       sync.WaitGroup
		firstErr error
		errMu    sync.Mutex
	)
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += workers {
				if err := op(i); err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
					return
				}
			}
		}(w)
	}
	wg.Wait()
	wall := time.Since(start)
	runtime.ReadMemStats(&m1)
	return laneStats{
		n:       n,
		wall:    wall,
		mallocs: int64(m1.Mallocs-m0.Mallocs) / int64(n),
		bytes:   int64(m1.TotalAlloc-m0.TotalAlloc) / int64(n),
	}, firstErr
}

// primeAndVerify prices each of the k distinct plans once (serially,
// filling the cache) and returns the reference estimates computed on a
// private evaluator for bit-identity checks during the lane.
func primeAndVerify(h *whatif.Handle, k int, plan func(idx int) (core.Config, int64)) ([]sim.Estimate, error) {
	ev, err := sim.NewEvaluator(h.Scenario())
	if err != nil {
		return nil, err
	}
	want := make([]sim.Estimate, k)
	ctx := context.Background()
	for idx := 0; idx < k; idx++ {
		cfg, bucket := plan(idx)
		want[idx], err = ev.Price(cfg, bucket)
		if err != nil {
			return nil, err
		}
		got, _, err := h.Price(ctx, cfg, bucket)
		if err != nil {
			return nil, err
		}
		if !estimatesEqual(got, want[idx]) {
			return nil, fmt.Errorf("plan %d: served estimate diverged from direct evaluator", idx)
		}
	}
	return want, nil
}

// runServeBenchmarks measures the what-if service end to end and
// writes BENCH_serve.json:
//
//	price/hit          tight: single-goroutine cache-hit Price (pinned 0 allocs)
//	serve/cached       noisy: GOMAXPROCS workers over 64 primed plans, hit rate exact
//	serve/uncached     noisy: per-op-unique plans, caching off — raw pricing throughput
//	serve/coalesced    noisy: identical concurrent queries under a batch window
//	serve/http         noisy: real TCP loopback round trips, responses verified
//
// target, when non-empty, points the serve/http lane at an externally
// started optcc-serve (the PGO-refresh flow) instead of an in-process
// listener; response verification and the engine-side determinism
// asserts are skipped since the engine lives in the other process.
func runServeBenchmarks(w io.Writer, outPath, benchtime, target string) error {
	testing.Init()
	if err := flag.Set("test.benchtime", benchtime); err != nil {
		return fmt.Errorf("benchtime %q: %w", benchtime, err)
	}
	var results []serveBenchResult
	ctx := context.Background()

	// --- price/hit: the allocation-free hot path, tight row.
	{
		eng := whatif.NewEngine(whatif.Options{})
		h, err := eng.Open(serveScenario())
		if err != nil {
			return err
		}
		cfg := core.CBFESC()
		if _, _, err := h.Price(ctx, cfg, 4<<20); err != nil {
			return err
		}
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				h.Price(ctx, cfg, 4<<20)
			}
		})
		ns := float64(r.T.Nanoseconds()) / float64(r.N)
		results = append(results, serveBenchResult{
			Op: "price/hit", Iterations: r.N, NsPerOp: ns,
			BytesPerOp: r.AllocedBytesPerOp(), AllocsPerOp: r.AllocsPerOp(),
			QPS: 1e9 / ns, CacheHitRate: 1,
		})
	}

	// --- serve/cached: concurrent steady-state over a primed cache.
	// K plans primed serially, then N requests round-robin over them:
	// requests = K + N, hits = N, so the rate is exactly N/(N+K).
	{
		const (
			k = 64
			n = 1 << 18
		)
		eng := whatif.NewEngine(whatif.Options{})
		h, err := eng.Open(serveScenario())
		if err != nil {
			return err
		}
		plan := func(idx int) (core.Config, int64) { return core.CBFESC(), int64(idx+1) << 16 }
		want, err := primeAndVerify(h, k, plan)
		if err != nil {
			return err
		}
		stats, err := runLane(n, func(i int) error {
			idx := i % k
			cfg, bucket := plan(idx)
			est, cached, err := h.Price(ctx, cfg, bucket)
			if err != nil {
				return err
			}
			if !cached {
				return fmt.Errorf("op %d: primed plan missed the cache", i)
			}
			if !estimatesEqual(est, want[idx]) {
				return fmt.Errorf("op %d: cached estimate diverged", i)
			}
			return nil
		})
		if err != nil {
			return err
		}
		st := eng.Stats()
		if st.Priced != k || st.CacheHits != n {
			return fmt.Errorf("serve/cached: priced %d hits %d, want %d/%d (determinism broken)",
				st.Priced, st.CacheHits, k, n)
		}
		if q := stats.qps(); q < minServeQPS {
			return fmt.Errorf("serve/cached: %.0f qps below the %d floor", q, minServeQPS)
		}
		results = append(results, serveBenchResult{
			Op: "serve/cached", Iterations: n, NsPerOp: stats.nsPerOp(),
			BytesPerOp: stats.bytes, AllocsPerOp: stats.mallocs,
			QPS:            stats.qps(),
			CacheHitRate:   float64(n) / float64(n+k),
			Priced:         st.Priced,
			WallclockNoisy: true, AllocsTight: true,
		})
	}

	// --- serve/uncached: caching disabled, every op a distinct plan —
	// the raw concurrent pricing throughput through the evaluator pool.
	{
		const n = 4096
		eng := whatif.NewEngine(whatif.Options{CacheEntries: -1})
		h, err := eng.Open(serveScenario())
		if err != nil {
			return err
		}
		stats, err := runLane(n, func(i int) error {
			_, cached, err := h.Price(ctx, core.CBFESC(), int64(i+1)<<10)
			if err != nil {
				return err
			}
			if cached {
				return fmt.Errorf("op %d: cache hit with caching disabled", i)
			}
			return nil
		})
		if err != nil {
			return err
		}
		st := eng.Stats()
		if st.Priced != n {
			return fmt.Errorf("serve/uncached: priced %d, want %d (unique plans must not collapse)", st.Priced, n)
		}
		results = append(results, serveBenchResult{
			Op: "serve/uncached", Iterations: n, NsPerOp: stats.nsPerOp(),
			BytesPerOp: stats.bytes, AllocsPerOp: stats.mallocs,
			QPS: stats.qps(), Priced: st.Priced, Batches: st.Batches,
			WallclockNoisy: true,
		})
	}

	// --- serve/coalesced: identical concurrent queries, caching off,
	// under a batch window — singleflight does the work.
	{
		const n = 4096
		eng := whatif.NewEngine(whatif.Options{CacheEntries: -1, BatchWindow: 200 * time.Microsecond})
		h, err := eng.Open(serveScenario())
		if err != nil {
			return err
		}
		cfg := core.CBFESC()
		stats, err := runLane(n, func(i int) error {
			_, _, err := h.Price(ctx, cfg, 4<<20)
			return err
		})
		if err != nil {
			return err
		}
		st := eng.Stats()
		if st.Coalesced == 0 {
			return fmt.Errorf("serve/coalesced: no request coalesced (%+v)", st)
		}
		results = append(results, serveBenchResult{
			Op: "serve/coalesced", Iterations: n, NsPerOp: stats.nsPerOp(),
			BytesPerOp: stats.bytes, AllocsPerOp: stats.mallocs,
			QPS: stats.qps(), Coalesced: st.Coalesced, Priced: st.Priced, Batches: st.Batches,
			WallclockNoisy: true,
		})
	}

	// --- serve/http: the whole service over a real TCP socket.
	{
		const n = 4096
		var (
			eng     *whatif.Engine
			baseURL = target
		)
		if baseURL == "" {
			eng = whatif.NewEngine(whatif.Options{})
			ts := httptest.NewServer(whatif.NewServer(eng, whatif.ServerOptions{}))
			defer ts.Close()
			baseURL = ts.URL
		}
		body := []byte(`{"config":{"preset":"cbfesc"},"bucket_bytes":4194304}`)
		client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 2 * runtime.GOMAXPROCS(0)}}

		var want sim.Estimate
		if eng != nil {
			// Prime (requests = 1 + n, hits = n) and capture the reference
			// for per-response verification.
			ev, err := sim.NewEvaluator(serveScenario())
			if err != nil {
				return err
			}
			want, err = ev.Price(core.CBFESC(), 4<<20)
			if err != nil {
				return err
			}
		}
		doPrice := func() (sim.Estimate, error) {
			resp, err := client.Post(baseURL+"/v1/price", "application/json", bytes.NewReader(body))
			if err != nil {
				return sim.Estimate{}, err
			}
			defer resp.Body.Close()
			raw, err := io.ReadAll(resp.Body)
			if err != nil {
				return sim.Estimate{}, err
			}
			if resp.StatusCode != http.StatusOK {
				return sim.Estimate{}, fmt.Errorf("status %d: %s", resp.StatusCode, raw)
			}
			var pr struct {
				Estimate sim.Estimate `json:"estimate"`
			}
			if err := json.Unmarshal(raw, &pr); err != nil {
				return sim.Estimate{}, err
			}
			return pr.Estimate, nil
		}
		if _, err := doPrice(); err != nil {
			return fmt.Errorf("serve/http prime: %w", err)
		}
		stats, err := runLane(n, func(i int) error {
			est, err := doPrice()
			if err != nil {
				return err
			}
			if eng != nil && !estimatesEqual(est, want) {
				return fmt.Errorf("op %d: served estimate diverged over the socket", i)
			}
			return nil
		})
		if err != nil {
			return err
		}
		row := serveBenchResult{
			Op: "serve/http", Iterations: n, NsPerOp: stats.nsPerOp(),
			BytesPerOp: stats.bytes, AllocsPerOp: stats.mallocs,
			QPS:            stats.qps(),
			WallclockNoisy: true,
		}
		if eng != nil {
			st := eng.Stats()
			if st.Priced != 1 || st.CacheHits != n {
				return fmt.Errorf("serve/http: priced %d hits %d, want 1/%d (determinism broken)",
					st.Priced, st.CacheHits, n)
			}
			row.CacheHitRate = float64(n) / float64(n+1)
			row.Priced = st.Priced
		}
		if row.QPS < minServeQPS {
			return fmt.Errorf("serve/http: %.0f qps below the %d floor", row.QPS, minServeQPS)
		}
		results = append(results, row)
	}

	fmt.Fprintf(w, "### serve-bench (%d ops → %s)\n\n", len(results), outPath)
	fmt.Fprintf(w, "%-16s %12s %10s %14s %14s %10s %10s\n",
		"op", "ns/op", "allocs/op", "qps", "hit rate", "coalesced", "batches")
	for _, r := range results {
		fmt.Fprintf(w, "%-16s %12.0f %10d %14.0f %14.6f %10d %10d\n",
			r.Op, r.NsPerOp, r.AllocsPerOp, r.QPS, r.CacheHitRate, r.Coalesced, r.Batches)
	}
	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(outPath, append(data, '\n'), 0o644)
}
