package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"testing"
	"time"

	"repro/internal/collective"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/model"
	"repro/internal/tensor"
	"repro/internal/train"
)

// overlapBenchResult is one row of BENCH_overlap.json — the perf trail
// of overlapped bucketed DP synchronization: full iterations in blocking
// vs overlapped mode (interleaved A/B rounds, median-of-rounds, so slow
// host drift cancels), the executed exposed-communication tail per mode,
// and the async handle machinery's steady-state allocation count (which
// must stay 0).
type overlapBenchResult struct {
	Op         string `json:"op"`
	Mode       string `json:"mode"` // blocking | overlapped | n/a
	Iterations int    `json:"iterations"`
	// NsPerOp is the median-of-rounds iteration time. Overlap hides DP
	// communication under backward compute, which needs idle hardware:
	// on a single-CPU host (see GoMaxProcs) the two modes converge and
	// only the exposed-time and wakeup-batching gains remain.
	NsPerOp     float64 `json:"ns_op"`
	BytesPerOp  int64   `json:"bytes_op"`
	AllocsPerOp int64   `json:"allocs_op"`
	// ExposedNsOp is the wall time per iteration the trainer spent
	// blocked on DP sync after backward (the executed exposed comm).
	ExposedNsOp int64 `json:"dp_exposed_ns_op"`
	// DPWireOp is the dp link class's executed wire bytes per iteration.
	DPWireOp   int64 `json:"dp_wire_bytes_op"`
	GoMaxProcs int   `json:"gomaxprocs"`
}

// overlapBenchConfig returns the DP-heavy benchmark configuration: an
// 8-way data-parallel 2-stage grid with a small compute budget, so the
// bucketed synchronization is a first-order fraction of the iteration.
func overlapBenchConfig(opt core.Config, mode train.DPSyncMode) train.Config {
	cfg := train.DefaultConfig()
	cfg.Model = model.Config{Vocab: 32, Hidden: 32, Context: 3, Blocks: 8, Seed: 7}
	cfg.DPGroups = 8
	cfg.Stages = 2
	cfg.MicroBatch = 4
	cfg.MicroBatches = 2
	cfg.Opt = opt
	cfg.DPSync = mode
	return cfg
}

// runOverlapBenchmarks measures full training iterations with blocking
// vs overlapped bucketed DP sync (dense and §7-compressed
// configurations), plus the bare async issue+wait path on the collective
// runtime (the 0 allocs/op steady-state pin), and writes the rows as
// JSON to outPath, echoing a table to w.
func runOverlapBenchmarks(w io.Writer, outPath, benchtime string) error {
	testing.Init()
	if err := flag.Set("test.benchtime", benchtime); err != nil {
		return fmt.Errorf("benchtime %q: %w", benchtime, err)
	}
	corpus, err := data.Generate(data.DefaultConfig())
	if err != nil {
		return err
	}

	var results []overlapBenchResult
	measurePair := func(op string, opt core.Config) error {
		modes := []train.DPSyncMode{train.DPSyncBlocking, train.DPSyncOverlapped}
		trainers := make([]*train.Trainer, len(modes))
		for i, mode := range modes {
			tr, err := train.New(overlapBenchConfig(opt, mode), corpus)
			if err != nil {
				return err
			}
			defer tr.Close()
			tr.TrainIteration() // warm workspaces, residuals, transport queues
			trainers[i] = tr
		}

		// Interleaved rounds: mode A then mode B per round, median over
		// rounds, so slow drift in host load hits both modes alike.
		const rounds, perRound = 9, 10
		rows := make([]overlapBenchResult, len(modes))
		times := make([][]float64, len(modes))
		exposed := make([]int64, len(modes))
		wire := make([]int64, len(modes))
		for i, tr := range trainers {
			e0 := tr.DPSyncExposedNs()
			st, _ := tr.CollectiveStats()
			exposed[i] = -e0
			wire[i] = -st.For(collective.ClassDP).Bytes
		}
		for r := 0; r < rounds; r++ {
			for i, tr := range trainers {
				t0 := time.Now()
				for j := 0; j < perRound; j++ {
					tr.TrainIteration()
				}
				times[i] = append(times[i], float64(time.Since(t0).Nanoseconds())/perRound)
			}
		}
		for i, tr := range trainers {
			exposed[i] += tr.DPSyncExposedNs()
			st, _ := tr.CollectiveStats()
			wire[i] += st.For(collective.ClassDP).Bytes
			sort.Float64s(times[i])
			// Allocation profile via the testing harness (steady state,
			// independent of the timing rounds).
			ab := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for j := 0; j < b.N; j++ {
					tr.TrainIteration()
				}
			})
			rows[i] = overlapBenchResult{
				Op:          op,
				Mode:        tr.DPSyncMode().String(),
				Iterations:  rounds * perRound,
				NsPerOp:     times[i][rounds/2],
				BytesPerOp:  ab.AllocedBytesPerOp(),
				AllocsPerOp: ab.AllocsPerOp(),
				ExposedNsOp: exposed[i] / (rounds * perRound),
				DPWireOp:    wire[i] / (rounds * perRound),
				GoMaxProcs:  runtime.GOMAXPROCS(0),
			}
		}
		results = append(results, rows...)
		return nil
	}

	full := core.CBFESC()
	full.CBRank = 2
	full.DPRank = 2
	if err := measurePair("iter/dense-dp", core.Baseline()); err != nil {
		return err
	}
	if err := measurePair("iter/cbfesc", full); err != nil {
		return err
	}

	// The async handle machinery in isolation: issue two in-flight dense
	// all-reduces and wait both. Steady state must allocate nothing —
	// the contract the overlapped trainer path is built on.
	topo, err := collective.NewTopology(4, 1)
	if err != nil {
		return err
	}
	rt := collective.NewRuntime(topo, nil, nil)
	defer rt.Close()
	grp := rt.NewGroup(collective.ClassDP, topo.DPGroup(0))
	mkBufs := func() []*tensor.Matrix {
		bufs := make([]*tensor.Matrix, 4)
		for i := range bufs {
			bufs[i] = tensor.New(64, 64)
			for j := range bufs[i].Data {
				bufs[i].Data[j] = float64((i*31 + j) % 17)
			}
		}
		return bufs
	}
	a, b2 := mkBufs(), mkBufs()
	handles := make([]*collective.Pending, 2)
	// Warm the op free list and workspace pool so the measurement sees
	// steady state even at -benchtime 1x.
	handles[0] = grp.AllReduceAsync(a, 0.25)
	handles[1] = grp.AllReduceAsync(b2, 0.25)
	handles[0].Wait()
	handles[1].Wait()
	wireBefore := rt.Stats().For(collective.ClassDP).Bytes
	var ops int64
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			handles[0] = grp.AllReduceAsync(a, 0.25)
			handles[1] = grp.AllReduceAsync(b2, 0.25)
			handles[0].Wait()
			handles[1].Wait()
		}
		ops += int64(b.N)
	})
	results = append(results, overlapBenchResult{
		Op:          "async/issue-wait-2inflight",
		Mode:        "n/a",
		Iterations:  r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		DPWireOp:    (rt.Stats().For(collective.ClassDP).Bytes - wireBefore) / ops,
		GoMaxProcs:  runtime.GOMAXPROCS(0),
	})

	fmt.Fprintf(w, "### overlap-bench (%d rows → %s, GOMAXPROCS=%d)\n\n",
		len(results), outPath, runtime.GOMAXPROCS(0))
	fmt.Fprintf(w, "%-28s %-10s %14s %10s %16s %14s\n",
		"op", "mode", "ns/op", "allocs/op", "dp exposed ns/op", "dp wire B/op")
	for _, r := range results {
		fmt.Fprintf(w, "%-28s %-10s %14.0f %10d %16d %14d\n",
			r.Op, r.Mode, r.NsPerOp, r.AllocsPerOp, r.ExposedNsOp, r.DPWireOp)
	}
	blob, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(outPath, append(blob, '\n'), 0o644)
}
