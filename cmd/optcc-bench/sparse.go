package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"testing"

	"repro/internal/collective"
	"repro/internal/compress"
	"repro/internal/tensor"
)

// sparseBenchResult is one row of BENCH_sparse.json — the perf trail for
// the sparse-native payload pipeline. The densified rows are the PR-5
// baseline path (same compressors, dense scatter-add reduction); the
// sparse rows are the merge-union path. SpeedupVsDensified is filled on
// sparse rows whose densified twin ran in the same invocation. The PGO
// columns are absent from a default build's output; optcc-gate
// -merge-pgo fills them from a second, -pgo=auto build's run.
type sparseBenchResult struct {
	Op          string  `json:"op"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_op"`
	BytesPerOp  int64   `json:"bytes_op"`
	AllocsPerOp int64   `json:"allocs_op"`
	WireBytesOp int64   `json:"wire_bytes_op"`
	Speedup     float64 `json:"speedup_vs_densified,omitempty"`
	PGONsPerOp  float64 `json:"pgo_ns_op,omitempty"`
	PGODeltaPct float64 `json:"pgo_delta_pct,omitempty"`
}

// runSparseBenchmarks measures the sparse-native compress+reduce+
// decompress pipeline against the densified oracle path at the
// acceptance shape (8 ranks × 512×512, 2% and 5% density — a
// bandwidth-bound regime where the densified path's full-shape
// reconstruction, scatter and d-way dense adds dominate) plus
// per-family error-feedback compression micros, writing
// BENCH_sparse.json.
func runSparseBenchmarks(w io.Writer, outPath, benchtime string) error {
	testing.Init()
	if err := flag.Set("test.benchtime", benchtime); err != nil {
		return fmt.Errorf("benchtime %q: %w", benchtime, err)
	}
	var results []sparseBenchResult

	fill := func(bufs []*tensor.Matrix, seed int) {
		for i, b := range bufs {
			for j := range b.Data {
				b.Data[j] = float64((i*131+j*7+seed)%47)/47 - 0.5
			}
		}
	}
	measure := func(op string, rt *collective.Runtime, cls collective.Class, f func()) sparseBenchResult {
		f() // warm pools, EF residuals, payload capacities
		f()
		f()
		before := rt.Stats().For(cls)
		var ops int64
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				f()
			}
			ops += int64(b.N)
		})
		after := rt.Stats().For(cls)
		res := sparseBenchResult{
			Op:          op,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			WireBytesOp: (after.Bytes - before.Bytes) / ops,
		}
		results = append(results, res)
		return res
	}

	newEFs := func(family string, d int, fraction float64, pool *tensor.Pool) []*compress.ErrorFeedback {
		efs := make([]*compress.ErrorFeedback, d)
		for i := range efs {
			var inner compress.Compressor
			if family == "topk" {
				inner = compress.NewTopK(fraction)
			} else {
				inner = compress.NewRandomK(fraction, int64(100+i))
			}
			efs[i] = compress.NewErrorFeedback(inner)
			if pool != nil {
				efs[i].SetPool(pool)
			}
		}
		return efs
	}

	// End-to-end all-reduce: sparse merge-union vs densified scatter-add,
	// same compressors, same wire bytes — the ≥3× acceptance row.
	const d, rows, cols = 8, 512, 512
	for _, family := range []string{"topk", "randomk"} {
		for _, fraction := range []float64{0.02, 0.05} {
			topo, err := collective.NewTopology(d, 2)
			if err != nil {
				return err
			}
			rt := collective.NewRuntime(topo, nil, nil)
			sparseGrp := rt.NewGroup(collective.ClassDP, topo.DPGroup(0))
			denseGrp := rt.NewGroup(collective.ClassDP, topo.DPGroup(0))
			denseGrp.SetDensifiedReduce(true)
			sparseEFs := newEFs(family, d, fraction, rt.Pool())
			denseEFs := newEFs(family, d, fraction, rt.Pool())
			bufs := make([]*tensor.Matrix, d)
			for i := range bufs {
				bufs[i] = tensor.New(rows, cols)
			}

			fill(bufs, 1)
			dn := measure(fmt.Sprintf("allreduce-densified/%s-d%d-f%g", family, d, fraction),
				rt, collective.ClassDP, func() { denseGrp.AllReduceCompressed(bufs, denseEFs, 1.0/d) })
			fill(bufs, 1)
			sp := measure(fmt.Sprintf("allreduce-sparse/%s-d%d-f%g", family, d, fraction),
				rt, collective.ClassDP, func() { sparseGrp.AllReduceCompressed(bufs, sparseEFs, 1.0/d) })
			results[len(results)-1].Speedup = dn.NsPerOp / sp.NsPerOp
			rt.Close()
		}
	}

	// Per-family error-feedback compression micros: the sparse entry
	// point (payload stays sparse, residual fixed up via gather/scatter)
	// vs the dense entry point (dense reconstruction + full-shape
	// residual subtraction).
	for _, family := range []string{"topk", "randomk"} {
		topo, err := collective.NewTopology(1, 2)
		if err != nil {
			return err
		}
		rt := collective.NewRuntime(topo, nil, nil)
		g := tensor.New(rows, cols)
		fill([]*tensor.Matrix{g}, 2)
		efDense := newEFs(family, 1, 0.02, rt.Pool())[0]
		efSparse := newEFs(family, 1, 0.02, rt.Pool())[0]
		dn := measure(fmt.Sprintf("ef-compress-densified/%s-f0.02", family), rt, collective.ClassDP,
			func() { efDense.CompressWithFeedback(g) })
		sp := measure(fmt.Sprintf("ef-compress-sparse/%s-f0.02", family), rt, collective.ClassDP,
			func() { efSparse.CompressWithFeedbackSparse(g) })
		results[len(results)-1].Speedup = dn.NsPerOp / sp.NsPerOp
		rt.Close()
	}

	fmt.Fprintf(w, "### sparse-bench (%d ops → %s)\n\n", len(results), outPath)
	fmt.Fprintf(w, "%-36s %14s %12s %10s %14s %10s\n",
		"op", "ns/op", "B/op", "allocs/op", "wire B/op", "speedup")
	for _, r := range results {
		sp := ""
		if r.Speedup > 0 {
			sp = fmt.Sprintf("%.2fx", r.Speedup)
		}
		fmt.Fprintf(w, "%-36s %14.0f %12d %10d %14d %10s\n",
			r.Op, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp, r.WireBytesOp, sp)
	}
	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(outPath, append(data, '\n'), 0o644)
}
