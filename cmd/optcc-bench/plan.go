package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"testing"

	"repro/internal/compress"
	"repro/internal/core"
	"repro/internal/plan"
	"repro/internal/tensor"
)

// planBenchResult is one row of BENCH_plan.json — the perf trail of the
// compiled-plan API, archived by CI next to the collective and pipeline
// artifacts. Compile rows must stay cheap (it is a one-time cost per
// trainer/scenario); the exec rows pin the other side of the contract:
// steady-state execution through registry-built compressors allocates
// nothing.
type planBenchResult struct {
	Op          string  `json:"op"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_op"`
	BytesPerOp  int64   `json:"bytes_op"`
	AllocsPerOp int64   `json:"allocs_op"`
}

// runPlanBenchmarks measures plan.Compile across the Table-2
// configurations and grids, plus steady-state compress+decompress
// through registry-built compressors, and writes the results as JSON to
// outPath, echoing a table to w.
func runPlanBenchmarks(w io.Writer, outPath, benchtime string) error {
	testing.Init()
	if err := flag.Set("test.benchtime", benchtime); err != nil {
		return fmt.Errorf("benchtime %q: %w", benchtime, err)
	}

	var results []planBenchResult
	measure := func(op string, f func(b *testing.B)) {
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			f(b)
		})
		results = append(results, planBenchResult{
			Op:          op,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		})
	}

	configs := []struct {
		name string
		cfg  core.Config
	}{
		{"baseline", core.Baseline()},
		{"cb", core.CB()},
		{"cbfe", core.CBFE()},
		{"cbfesc", core.CBFESC()},
	}
	grids := []plan.Grid{
		{Stages: 4, DPGroups: 2, MicroBatches: 4, BoundaryRows: 32, BoundaryCols: 48},
		{Stages: 8, DPGroups: 8, MicroBatches: 16, BoundaryRows: 64, BoundaryCols: 512},
	}
	for _, c := range configs {
		for _, g := range grids {
			cfg, g := c.cfg, g
			op := fmt.Sprintf("compile/%s/dp%d-pp%d-m%d", c.name, g.DPGroups, g.Stages, g.MicroBatches)
			measure(op, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := plan.Compile(cfg, g); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}

	// Steady-state execution through registry-built compressors: after
	// the first warm-up call, compress+decompress must be 0 allocs/op.
	probe := tensor.New(64, 512)
	for i := range probe.Data {
		probe.Data[i] = float64(i%23)/23 - 0.5
	}
	for _, spec := range []compress.Spec{
		{Name: "powersgd", Rank: 16, Seed: 7},
		{Name: "terngrad", Seed: 7},
	} {
		c, err := compress.Build(spec)
		if err != nil {
			return err
		}
		dst := tensor.New(probe.Rows, probe.Cols)
		c.DecompressInto(dst, c.Compress(probe)) // warm the workspaces
		measure("exec/"+spec.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c.DecompressInto(dst, c.Compress(probe))
			}
		})
	}

	fmt.Fprintf(w, "### plan-bench (%d ops → %s)\n\n", len(results), outPath)
	fmt.Fprintf(w, "%-32s %14s %12s %10s\n", "op", "ns/op", "B/op", "allocs/op")
	for _, r := range results {
		fmt.Fprintf(w, "%-32s %14.0f %12d %10d\n", r.Op, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
	}
	blob, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(outPath, append(blob, '\n'), 0o644)
}
