package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"testing"

	"repro/internal/collective"
	"repro/internal/compress"
	"repro/internal/tensor"
)

// collectiveBenchResult is one row of BENCH_collective.json — the
// machine-readable perf trail the CI uploads so the repo has a
// benchmark trajectory across PRs.
type collectiveBenchResult struct {
	Op          string  `json:"op"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_op"`
	BytesPerOp  int64   `json:"bytes_op"`  // heap bytes allocated per op
	AllocsPerOp int64   `json:"allocs_op"` // heap allocations per op
	WireBytesOp int64   `json:"wire_bytes_op"`
	StepsPerOp  int64   `json:"steps_op"`
}

// runCollectiveBenchmarks measures the collective runtime's hot ops with
// the testing harness (benchtime bounds each measurement) and writes the
// results as JSON to outPath, echoing a table to w.
func runCollectiveBenchmarks(w io.Writer, outPath, benchtime string) error {
	testing.Init() // register test.* flags so benchtime is settable
	if err := flag.Set("test.benchtime", benchtime); err != nil {
		return fmt.Errorf("benchtime %q: %w", benchtime, err)
	}
	var results []collectiveBenchResult

	fill := func(bufs []*tensor.Matrix) {
		for i, b := range bufs {
			for j := range b.Data {
				b.Data[j] = float64((i*131+j)%23) / 23
			}
		}
	}
	measure := func(op string, rt *collective.Runtime, cls collective.Class, f func()) {
		f() // warm workspaces, residuals, and payload buffers
		f()
		before := rt.Stats().For(cls)
		// testing.Benchmark runs probe rounds before the final N, so count
		// every execution: the traffic window spans all of them.
		var ops int64
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				f()
			}
			ops += int64(b.N)
		})
		after := rt.Stats().For(cls)
		results = append(results, collectiveBenchResult{
			Op:          op,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			WireBytesOp: (after.Bytes - before.Bytes) / ops,
			StepsPerOp:  (after.Steps - before.Steps) / ops,
		})
	}

	const rows, cols = 48, 48
	for _, d := range []int{2, 4, 8} {
		topo, err := collective.NewTopology(d, 2)
		if err != nil {
			return err
		}
		rt := collective.NewRuntime(topo, nil, nil)
		grp := rt.NewGroup(collective.ClassDP, topo.DPGroup(0))
		bufs := make([]*tensor.Matrix, d)
		for i := range bufs {
			bufs[i] = tensor.New(rows, cols)
		}
		fill(bufs)
		measure(fmt.Sprintf("allreduce/d%d", d), rt, collective.ClassDP,
			func() { grp.AllReduce(bufs, 1/float64(d)) })

		if d == 4 {
			efs := make([]*compress.ErrorFeedback, d)
			for i := range efs {
				efs[i] = compress.NewErrorFeedback(compress.NewPowerSGD(4, int64(i)))
				efs[i].SetPool(rt.Pool())
			}
			measure("allreduce-compressed/d4-r4", rt, collective.ClassDP,
				func() { grp.AllReduceCompressed(bufs, efs, 1/float64(d)) })

			fused := rt.NewGroup(collective.ClassEmb, topo.EmbGroup())
			fBufs := make([]*tensor.Matrix, 2*d)
			for i := range fBufs {
				fBufs[i] = tensor.New(rows, cols)
			}
			fill(fBufs)
			measure("emb-fused-allreduce/d4", rt, collective.ClassEmb,
				func() { fused.AllReduce(fBufs, 1/float64(d)) })

			measure("broadcast/d4", rt, collective.ClassDP,
				func() { grp.Broadcast(bufs, 0) })
		}
		rt.Close()
	}

	fmt.Fprintf(w, "### collective-bench (%d ops → %s)\n\n", len(results), outPath)
	fmt.Fprintf(w, "%-28s %14s %12s %10s %14s %9s\n",
		"op", "ns/op", "B/op", "allocs/op", "wire B/op", "steps/op")
	for _, r := range results {
		fmt.Fprintf(w, "%-28s %14.0f %12d %10d %14d %9d\n",
			r.Op, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp, r.WireBytesOp, r.StepsPerOp)
	}
	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(outPath, append(data, '\n'), 0o644)
}
