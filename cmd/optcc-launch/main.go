// Command optcc-launch runs a process-per-rank training grid: it starts
// a coordinator, spawns one optcc-train process per (dp, stage) rank,
// and aggregates the per-rank reports into the run's final mean loss and
// per-class executed traffic — bit-identical to the single-process
// optcc-train run of the same flags, which the CI smoke job asserts.
//
// Example (a 2-stage, 2-group grid over unix sockets):
//
//	optcc-launch -config baseline -iters 5 -pp 2 -dp 2 -transport unix
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"path/filepath"

	"repro/internal/collective"
	"repro/internal/train"
)

func main() {
	config := flag.String("config", "baseline", "config: baseline, cb, cbfe, cbfesc, naivedp, naivecb")
	iters := flag.Int("iters", 5, "training iterations")
	seed := flag.Int64("seed", 7, "random seed")
	pp := flag.Int("pp", 0, "pipeline-parallel stages (0 = config default)")
	dp := flag.Int("dp", 0, "data-parallel groups (0 = config default)")
	transport := flag.String("transport", "unix", "wire transport between ranks: unix or tcp")
	engine := flag.String("engine", "auto", "execution engine passed to every rank")
	dpSync := flag.String("dp-sync", "auto", "DP synchronization mode passed to every rank")
	trainBin := flag.String("train-bin", "", "path to the optcc-train binary (default: next to this binary, then $PATH)")
	flag.Parse()

	if err := run(*config, *iters, *seed, *pp, *dp, *transport, *engine, *dpSync, *trainBin); err != nil {
		fmt.Fprintln(os.Stderr, "optcc-launch:", err)
		os.Exit(1)
	}
}

func run(config string, iters int, seed int64, pp, dp int, transport, engine, dpSync, trainBin string) error {
	if transport != "unix" && transport != "tcp" {
		return fmt.Errorf("unknown -transport %q (want unix or tcp)", transport)
	}
	// The launcher resolves the grid exactly like optcc-train so world
	// and the loss denominator match the ranks' view of the same flags.
	cfg := train.DefaultConfig()
	if pp > 0 {
		cfg.Stages = pp
	}
	if dp > 0 {
		cfg.DPGroups = dp
	}
	world := cfg.Stages * cfg.DPGroups

	bin, err := resolveTrainBin(trainBin)
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	coord := collective.NewCoordinator(world, ln)
	defer coord.Close()

	sockDir, err := os.MkdirTemp("", "occ-launch")
	if err != nil {
		return err
	}
	defer os.RemoveAll(sockDir)

	// Spawn one optcc-train per rank; rank output goes to stderr under a
	// [rank N] prefix so the launcher's own stdout stays parseable.
	procs := make([]*exec.Cmd, world)
	exits := make(chan rankExit, world)
	for r := 0; r < world; r++ {
		cmd := exec.Command(bin,
			"-config", config,
			"-iters", fmt.Sprint(iters),
			"-seed", fmt.Sprint(seed),
			"-pp", fmt.Sprint(cfg.Stages),
			"-dp", fmt.Sprint(cfg.DPGroups),
			"-engine", engine,
			"-dp-sync", dpSync,
			"-rank", fmt.Sprint(r),
			"-transport", transport,
			"-coord", coord.Addr(),
			"-sock-dir", sockDir,
		)
		out, err := cmd.StdoutPipe()
		if err != nil {
			return err
		}
		errPipe, err := cmd.StderrPipe()
		if err != nil {
			return err
		}
		go prefixLines(os.Stderr, out, fmt.Sprintf("[rank %d] ", r))
		go prefixLines(os.Stderr, errPipe, fmt.Sprintf("[rank %d] ", r))
		if err := cmd.Start(); err != nil {
			killAll(procs)
			return fmt.Errorf("rank %d: %w", r, err)
		}
		procs[r] = cmd
		go func(r int, cmd *exec.Cmd) {
			exits <- rankExit{rank: r, err: cmd.Wait()}
		}(r, cmd)
	}

	// Either every rank reports (coordinator barrier) or a rank dies
	// first — then the run is torn down and the first failure propagates.
	type result struct {
		reports []collective.RankReport
		err     error
	}
	done := make(chan result, 1)
	go func() {
		reports, err := coord.Wait()
		done <- result{reports, err}
	}()

	var reports []collective.RankReport
	remaining := world
	for reports == nil {
		select {
		case res := <-done:
			if res.err != nil {
				killAll(procs)
				return res.err
			}
			reports = res.reports
		case e := <-exits:
			remaining--
			if e.err != nil {
				killAll(procs)
				return fmt.Errorf("rank %d: %w", e.rank, e.err)
			}
		}
	}
	for ; remaining > 0; remaining-- {
		if e := <-exits; e.err != nil {
			return fmt.Errorf("rank %d: %w", e.rank, e.err)
		}
	}

	// Aggregate in rank order: one rank per DP group contributes a loss
	// sum, so the additions replay the in-process trainer's sum exactly.
	var lossSum float64
	var agg collective.Stats
	var frameBytes int64
	for _, rep := range reports {
		lossSum += rep.LossSum
		for _, c := range collective.Classes() {
			agg[c].Bytes += rep.Stats[c].Bytes
			agg[c].Messages += rep.Stats[c].Messages
			agg[c].Steps += rep.Stats[c].Steps
		}
		frameBytes += rep.FrameBytes
	}
	fmt.Printf("grid: PP=%d DP=%d world=%d transport=%s config=%s iters=%d\n",
		cfg.Stages, cfg.DPGroups, world, transport, config, iters)
	fmt.Println("executed collective traffic (aggregated over ranks):")
	for _, c := range collective.Classes() {
		cs := agg.For(c)
		fmt.Printf("  %-4s %12d bytes  %9d messages  %7d steps\n", c, cs.Bytes, cs.Messages, cs.Steps)
	}
	fmt.Printf("framed wire volume: %d bytes\n", frameBytes)
	fmt.Printf("final training loss %.17g\n", lossSum/float64(cfg.DPGroups*cfg.MicroBatches))
	return nil
}

type rankExit struct {
	rank int
	err  error
}

// resolveTrainBin locates the optcc-train binary: explicit flag, then
// next to this executable, then $PATH.
func resolveTrainBin(explicit string) (string, error) {
	if explicit != "" {
		return explicit, nil
	}
	if self, err := os.Executable(); err == nil {
		sibling := filepath.Join(filepath.Dir(self), "optcc-train")
		if _, err := os.Stat(sibling); err == nil {
			return sibling, nil
		}
	}
	if p, err := exec.LookPath("optcc-train"); err == nil {
		return p, nil
	}
	return "", fmt.Errorf("optcc-train binary not found (build it next to optcc-launch or pass -train-bin)")
}

// prefixLines copies r to w line by line under a prefix.
func prefixLines(w io.Writer, r io.Reader, prefix string) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	for sc.Scan() {
		fmt.Fprintf(w, "%s%s\n", prefix, sc.Text())
	}
}

// killAll terminates every started rank process (teardown on failure;
// Wait errors from killed processes are drained by their exit goroutines).
func killAll(procs []*exec.Cmd) {
	for _, cmd := range procs {
		if cmd != nil && cmd.Process != nil {
			cmd.Process.Kill()
		}
	}
}
