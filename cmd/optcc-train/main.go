// Command optcc-train pretrains the stand-in language model for real
// under any Optimus-CC configuration, reporting training loss, validation
// perplexity over time, and zero-shot probe-task accuracy at the end —
// the quality half of the paper's evaluation.
//
// Examples:
//
//	optcc-train -config baseline -iters 600
//	optcc-train -config cb -iters 600
//	optcc-train -config naivecb -iters 600   # Fig. 3's quality collapse
//
// With -rank the command becomes one rank of a process-per-rank run
// (normally spawned by optcc-launch): it joins the coordinator, builds a
// socket transport to its peers, trains only its own (dp, stage) rank,
// and reports its loss sum and transport stats back — bit-identical, in
// aggregate, to the single-process run of the same flags.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/collective"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/prof"
	"repro/internal/train"
)

var configs = map[string]func() core.Config{
	"baseline": core.Baseline,
	"cb":       core.CB,
	"cbfe":     core.CBFE,
	"cbfesc":   core.CBFESC,
	"naivedp":  core.NaiveDP,
	"naivecb":  core.NaiveCB,
}

func main() {
	config := flag.String("config", "baseline", "config: baseline, cb, cbfe, cbfesc, naivedp, naivecb")
	iters := flag.Int("iters", 600, "training iterations")
	evalEvery := flag.Int("eval-every", 100, "validation cadence")
	seed := flag.Int64("seed", 7, "random seed")
	stats := flag.Bool("stats", false, "collect Fig. 11 error/activation statistics")
	parallel := flag.Bool("parallel", false, "run data-parallel groups on separate goroutines (bit-identical results)")
	engine := flag.String("engine", "auto", "execution engine: auto, pipelined, serial (collective sync, serial micro-batch loop), reference (fully serial oracle)")
	cbAlg := flag.String("cb-alg", "", "override the inter-stage compressor family by registry name (powersgd, topk, randomk, terngrad, ...)")
	dpAlg := flag.String("dp-alg", "", "override the DP-sync compressor family by registry name (powersgd, terngrad, ...)")
	printPlan := flag.Bool("print-plan", false, "print the compiled communication/compression plan before training")
	dpSync := flag.String("dp-sync", "auto", "DP synchronization mode: auto, overlapped (bucketed all-reduces issued during backward), blocking (barrier after backward)")
	bucketBytes := flag.Int64("bucket-bytes", 0, "DP-sync bucket byte budget (0 = plan default)")
	checkpoint := flag.String("checkpoint", "", "write the final training state (v2: weights, momentum, error-feedback residuals) to this file")
	resume := flag.String("resume", "", "restore training state from this checkpoint before training (v2 resumes bit-identically)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file (usable as a -pgo=auto feed)")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	trace := flag.String("trace", "", "record per-rank spans and write the executed run as Chrome trace-event JSON (pid 2; merge with optcc-sim -trace output to compare in Perfetto). Capacity is sized for -iters; keep traced runs to modest iteration counts")
	metricsOut := flag.String("metrics-out", "", "write the metrics-registry snapshot (counters) as JSON to this file")
	reconcile := flag.Bool("reconcile", false, "after training, reconcile the executed trace against the transport counters (tolerance 0) and the simulator's predictions; requires -trace")
	pp := flag.Int("pp", 0, "pipeline-parallel stages (0 = config default)")
	dp := flag.Int("dp", 0, "data-parallel groups (0 = config default)")
	tune := flag.Bool("autotune", false, "search the placement space at paper scale (sim as oracle) on this DP×PP grid, print the ranked table, train on the winner, and verify executed wire volumes == the autotuner's prediction (tol 0)")
	tuneBudget := flag.Float64("autotune-budget", 0.10, "autotune quality-loss budget (estimated ΔPPL)")
	tuneTop := flag.Int("autotune-top", 12, "autotune ranked-table rows to print (0 = all)")
	rank := flag.Int("rank", -1, "run as this rank of a process-per-rank grid (requires -coord; normally set by optcc-launch)")
	transport := flag.String("transport", "unix", "process-per-rank wire transport: unix or tcp")
	coord := flag.String("coord", "", "coordinator address (host:port) for process-per-rank runs")
	sockDir := flag.String("sock-dir", "", "directory for unix data sockets in process-per-rank runs")
	flag.Parse()

	stopProfiles, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "optcc-train:", err)
		os.Exit(1)
	}
	// Check the flush: a truncated profile must not exit 0 (it would
	// silently poison the PGO feed).
	defer func() {
		if err := stopProfiles(); err != nil {
			fmt.Fprintln(os.Stderr, "optcc-train:", err)
			os.Exit(1)
		}
	}()

	mk, ok := configs[strings.ToLower(*config)]
	if !ok {
		fmt.Fprintf(os.Stderr, "optcc-train: unknown config %q\n", *config)
		os.Exit(1)
	}
	corpus, err := data.Generate(data.DefaultConfig())
	if err != nil {
		fmt.Fprintln(os.Stderr, "optcc-train:", err)
		os.Exit(1)
	}
	eng, err := train.ParseEngine(*engine)
	if err != nil {
		fmt.Fprintln(os.Stderr, "optcc-train:", err)
		os.Exit(1)
	}
	cfg := train.DefaultConfig()
	cfg.MicroBatch = 32
	cfg.Opt = experiments.ScaledOpt(mk())
	if *cbAlg != "" {
		if !cfg.Opt.CompressBackprop {
			fmt.Fprintf(os.Stderr, "optcc-train: warning: -cb-alg %s has no effect: config %q does not compress backprop\n", *cbAlg, *config)
		}
		cfg.Opt.CBAlg = core.CBAlgorithm(*cbAlg)
	}
	if *dpAlg != "" {
		if !cfg.Opt.DPCompress() {
			fmt.Fprintf(os.Stderr, "optcc-train: warning: -dp-alg %s has no effect: config %q does not compress DP sync\n", *dpAlg, *config)
		}
		cfg.Opt.DPAlg = *dpAlg
	}
	cfg.Seed = *seed
	cfg.Model.Seed = *seed
	cfg.CollectStats = *stats
	cfg.ParallelGroups = *parallel
	cfg.Engine = eng
	cfg.BucketBytes = *bucketBytes
	if *pp > 0 {
		cfg.Stages = *pp
	}
	if *dp > 0 {
		cfg.DPGroups = *dp
	}
	if *reconcile && *trace == "" {
		fmt.Fprintln(os.Stderr, "optcc-train: -reconcile requires -trace (no spans to reconcile otherwise)")
		os.Exit(1)
	}
	if *trace != "" {
		cfg.TraceCapacity = train.TraceCapacityFor(cfg, *iters)
	}
	switch *dpSync {
	case "auto":
		cfg.DPSync = train.DPSyncAuto
	case "overlapped":
		cfg.DPSync = train.DPSyncOverlapped
	case "blocking":
		cfg.DPSync = train.DPSyncBlocking
	default:
		fmt.Fprintf(os.Stderr, "optcc-train: unknown -dp-sync %q (want auto, overlapped, or blocking)\n", *dpSync)
		os.Exit(1)
	}

	if *tune {
		if *rank >= 0 || *resume != "" {
			fmt.Fprintln(os.Stderr, "optcc-train: -autotune does not combine with -rank or -resume")
			os.Exit(1)
		}
		wcfg, res, err := tunePlan(cfg, *seed, *tuneBudget, *tuneTop)
		if err != nil {
			fmt.Fprintln(os.Stderr, "optcc-train:", err)
			os.Exit(1)
		}
		fmt.Print(res.Table())
		cfg.Opt = wcfg
	}

	if *rank >= 0 {
		if *trace != "" || *checkpoint != "" || *resume != "" || *stats {
			fmt.Fprintln(os.Stderr, "optcc-train: -rank mode does not support -trace, -checkpoint, -resume, or -stats")
			os.Exit(1)
		}
		if err := runRank(cfg, corpus, *rank, *transport, *coord, *sockDir, *iters); err != nil {
			fmt.Fprintln(os.Stderr, "optcc-train:", err)
			os.Exit(1)
		}
		return
	}

	tr, err := train.New(cfg, corpus)
	if err != nil {
		fmt.Fprintln(os.Stderr, "optcc-train:", err)
		os.Exit(1)
	}
	defer tr.Close()
	if *printPlan {
		fmt.Println(tr.Plan())
		fmt.Printf("engine: %s\n", tr.Engine())
	}
	if *resume != "" {
		f, err := os.Open(*resume)
		if err != nil {
			fmt.Fprintln(os.Stderr, "optcc-train:", err)
			os.Exit(1)
		}
		err = tr.LoadCheckpoint(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "optcc-train:", err)
			os.Exit(1)
		}
		fmt.Printf("resumed from %s at iteration %d\n", *resume, tr.Iteration())
	}
	fmt.Printf("config=%s  model: V=%d H=%d blocks=%d  PP=%d DP=%d  micro=%d×%d\n",
		cfg.Opt.Name(), cfg.Model.Vocab, cfg.Model.Hidden, cfg.Model.Blocks,
		cfg.Stages, cfg.DPGroups, cfg.MicroBatch, cfg.MicroBatches)

	finalLoss := tr.Train(*iters, func(it int, loss float64) {
		if it%*evalEvery == 0 || it == *iters {
			fmt.Printf("iter %5d  loss %7.4f  val PPL %7.3f\n", it, loss, tr.ValidationPerplexity(500))
		}
	})
	// Full precision, one line: the multi-process smoke compares this
	// against optcc-launch's aggregate bit for bit.
	fmt.Printf("final training loss %.17g\n", finalLoss)

	tasks := data.TaskSuite(corpus, cfg.Model.Context, 200, *seed+1000)
	accs := tr.TaskAccuracies(tasks)
	var names []string
	for n := range accs {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Println("zero-shot probe tasks:")
	for _, n := range names {
		fmt.Printf("  %-10s %5.1f%%\n", n, accs[n]*100)
	}
	if *stats {
		eps, diff, cos := tr.Stats().Summary()
		fmt.Printf("Fig. 11 conditions: |Avg ε|=%.5f  |Avg ΔY|=%.5f  |cos|=%.5f over %d sends\n",
			eps, diff, cos, tr.Stats().Count())
	}
	if st, ok := tr.CollectiveStats(); ok {
		fmt.Println("executed collective traffic:")
		for _, c := range collective.Classes() {
			cs := st.For(c)
			fmt.Printf("  %-4s %12d bytes  %9d messages  %7d steps\n", c, cs.Bytes, cs.Messages, cs.Steps)
		}
	}
	if *tune {
		if err := verifyAutotuned(tr, *iters); err != nil {
			fmt.Fprintln(os.Stderr, "optcc-train:", err)
			os.Exit(1)
		}
	}
	if *reconcile {
		rep, err := tr.ReconcileTrace()
		if err != nil {
			fmt.Fprintln(os.Stderr, "optcc-train:", err)
			os.Exit(1)
		}
		fmt.Print(rep)
	}
	if *trace != "" {
		name := fmt.Sprintf("optcc-train %s dp%d×pp%d", cfg.Opt.Name(), cfg.DPGroups, cfg.Stages)
		if err := writeTrace(tr, *trace, name); err != nil {
			fmt.Fprintln(os.Stderr, "optcc-train:", err)
			os.Exit(1)
		}
		fmt.Printf("executed trace written to %s (%d spans, %d dropped)\n",
			*trace, tr.Recorder().Count(), tr.Recorder().Dropped())
	}
	if *metricsOut != "" {
		if err := writeMetrics(tr, *metricsOut); err != nil {
			fmt.Fprintln(os.Stderr, "optcc-train:", err)
			os.Exit(1)
		}
		fmt.Printf("metrics written to %s\n", *metricsOut)
	}
	if *checkpoint != "" {
		if err := writeCheckpoint(tr, *checkpoint); err != nil {
			fmt.Fprintln(os.Stderr, "optcc-train:", err)
			os.Exit(1)
		}
		fmt.Printf("checkpoint written to %s\n", *checkpoint)
	}
}

// runRank executes one rank of a process-per-rank run: rendezvous with
// the coordinator, socket transport to the peers, training gated to this
// rank's (dp, stage) share, and the end-of-run report. The configuration
// must be flag-identical across ranks (optcc-launch guarantees this):
// every process seeds the same model and data RNG, so the grid's
// aggregate is bit-identical to the single-process run of the same flags.
func runRank(cfg train.Config, corpus *data.Corpus, rank int, network, coordAddr, sockDir string, iters int) error {
	world := cfg.Stages * cfg.DPGroups
	if rank >= world {
		return fmt.Errorf("-rank %d outside world %d", rank, world)
	}
	if coordAddr == "" {
		return fmt.Errorf("-rank requires -coord")
	}
	var ln net.Listener
	var err error
	switch network {
	case "unix":
		if sockDir == "" {
			return fmt.Errorf("-transport unix requires -sock-dir")
		}
		ln, err = net.Listen("unix", filepath.Join(sockDir, fmt.Sprintf("rank-%d.sock", rank)))
	case "tcp":
		ln, err = net.Listen("tcp", "127.0.0.1:0")
	default:
		err = fmt.Errorf("unknown -transport %q (want unix or tcp)", network)
	}
	if err != nil {
		return err
	}
	peer, peers, err := collective.JoinCoordinator("tcp", coordAddr, rank, world, ln.Addr().String(), time.Minute)
	if err != nil {
		ln.Close()
		return err
	}
	st, err := collective.NewSocketTransportListener(collective.SocketConfig{
		Network: network,
		Rank:    rank,
		World:   world,
		Addrs:   peers,
	}, ln)
	if err != nil {
		return err
	}
	cfg.Dist = &train.DistConfig{Transport: st}
	tr, err := train.New(cfg, corpus)
	if err != nil {
		st.Close()
		return err
	}
	defer tr.Close()
	for i := 0; i < iters; i++ {
		tr.TrainIteration()
	}
	rep := collective.RankReport{
		LossSum:    tr.LastIterationLossSum(),
		Stats:      st.Stats(),
		FrameBytes: st.FrameBytes(),
	}
	// The report ack is the completion barrier: every rank has reached it
	// before any data socket closes, so no send can hit a dead peer.
	if err := peer.Report(rank, rep, 2*time.Minute); err != nil {
		st.Close()
		return err
	}
	return st.Close()
}

// writeTrace exports the executed-run trace to path, propagating the
// Close error (an unflushed trace must not report success).
func writeTrace(tr *train.Trainer, path, processName string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.WriteRecorderTrace(f, tr.Recorder(), processName); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeMetrics snapshots the trainer's counter registry to path as JSON.
func writeMetrics(tr *train.Trainer, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.Metrics().WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeCheckpoint saves the training state to path, propagating the
// Close error: a checkpoint whose final flush failed (full disk, broken
// mount) must not report a successful save.
func writeCheckpoint(tr *train.Trainer, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.SaveCheckpoint(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
