// Command optcc-train pretrains the stand-in language model for real
// under any Optimus-CC configuration, reporting training loss, validation
// perplexity over time, and zero-shot probe-task accuracy at the end —
// the quality half of the paper's evaluation.
//
// Examples:
//
//	optcc-train -config baseline -iters 600
//	optcc-train -config cb -iters 600
//	optcc-train -config naivecb -iters 600   # Fig. 3's quality collapse
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/collective"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/prof"
	"repro/internal/train"
)

var configs = map[string]func() core.Config{
	"baseline": core.Baseline,
	"cb":       core.CB,
	"cbfe":     core.CBFE,
	"cbfesc":   core.CBFESC,
	"naivedp":  core.NaiveDP,
	"naivecb":  core.NaiveCB,
}

func main() {
	config := flag.String("config", "baseline", "config: baseline, cb, cbfe, cbfesc, naivedp, naivecb")
	iters := flag.Int("iters", 600, "training iterations")
	evalEvery := flag.Int("eval-every", 100, "validation cadence")
	seed := flag.Int64("seed", 7, "random seed")
	stats := flag.Bool("stats", false, "collect Fig. 11 error/activation statistics")
	parallel := flag.Bool("parallel", false, "run data-parallel groups on separate goroutines (bit-identical results)")
	engine := flag.String("engine", "auto", "execution engine: auto, pipelined, serial (collective sync, serial micro-batch loop), reference (fully serial oracle)")
	cbAlg := flag.String("cb-alg", "", "override the inter-stage compressor family by registry name (powersgd, topk, randomk, terngrad, ...)")
	dpAlg := flag.String("dp-alg", "", "override the DP-sync compressor family by registry name (powersgd, terngrad, ...)")
	printPlan := flag.Bool("print-plan", false, "print the compiled communication/compression plan before training")
	dpSync := flag.String("dp-sync", "auto", "DP synchronization mode: auto, overlapped (bucketed all-reduces issued during backward), blocking (barrier after backward)")
	bucketBytes := flag.Int64("bucket-bytes", 0, "DP-sync bucket byte budget (0 = plan default)")
	checkpoint := flag.String("checkpoint", "", "write the final training state (v2: weights, momentum, error-feedback residuals) to this file")
	resume := flag.String("resume", "", "restore training state from this checkpoint before training (v2 resumes bit-identically)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file (usable as a -pgo=auto feed)")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	trace := flag.String("trace", "", "record per-rank spans and write the executed run as Chrome trace-event JSON (pid 2; merge with optcc-sim -trace output to compare in Perfetto). Capacity is sized for -iters; keep traced runs to modest iteration counts")
	metricsOut := flag.String("metrics-out", "", "write the metrics-registry snapshot (counters) as JSON to this file")
	reconcile := flag.Bool("reconcile", false, "after training, reconcile the executed trace against the transport counters (tolerance 0) and the simulator's predictions; requires -trace")
	flag.Parse()

	stopProfiles, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "optcc-train:", err)
		os.Exit(1)
	}
	// Check the flush: a truncated profile must not exit 0 (it would
	// silently poison the PGO feed).
	defer func() {
		if err := stopProfiles(); err != nil {
			fmt.Fprintln(os.Stderr, "optcc-train:", err)
			os.Exit(1)
		}
	}()

	mk, ok := configs[strings.ToLower(*config)]
	if !ok {
		fmt.Fprintf(os.Stderr, "optcc-train: unknown config %q\n", *config)
		os.Exit(1)
	}
	corpus, err := data.Generate(data.DefaultConfig())
	if err != nil {
		fmt.Fprintln(os.Stderr, "optcc-train:", err)
		os.Exit(1)
	}
	eng, err := train.ParseEngine(*engine)
	if err != nil {
		fmt.Fprintln(os.Stderr, "optcc-train:", err)
		os.Exit(1)
	}
	cfg := train.DefaultConfig()
	cfg.MicroBatch = 32
	cfg.Opt = experiments.ScaledOpt(mk())
	if *cbAlg != "" {
		if !cfg.Opt.CompressBackprop {
			fmt.Fprintf(os.Stderr, "optcc-train: warning: -cb-alg %s has no effect: config %q does not compress backprop\n", *cbAlg, *config)
		}
		cfg.Opt.CBAlg = core.CBAlgorithm(*cbAlg)
	}
	if *dpAlg != "" {
		if !cfg.Opt.DPCompress() {
			fmt.Fprintf(os.Stderr, "optcc-train: warning: -dp-alg %s has no effect: config %q does not compress DP sync\n", *dpAlg, *config)
		}
		cfg.Opt.DPAlg = *dpAlg
	}
	cfg.Seed = *seed
	cfg.Model.Seed = *seed
	cfg.CollectStats = *stats
	cfg.ParallelGroups = *parallel
	cfg.Engine = eng
	cfg.BucketBytes = *bucketBytes
	if *reconcile && *trace == "" {
		fmt.Fprintln(os.Stderr, "optcc-train: -reconcile requires -trace (no spans to reconcile otherwise)")
		os.Exit(1)
	}
	if *trace != "" {
		cfg.TraceCapacity = train.TraceCapacityFor(cfg, *iters)
	}
	switch *dpSync {
	case "auto":
		cfg.DPSync = train.DPSyncAuto
	case "overlapped":
		cfg.DPSync = train.DPSyncOverlapped
	case "blocking":
		cfg.DPSync = train.DPSyncBlocking
	default:
		fmt.Fprintf(os.Stderr, "optcc-train: unknown -dp-sync %q (want auto, overlapped, or blocking)\n", *dpSync)
		os.Exit(1)
	}

	tr, err := train.New(cfg, corpus)
	if err != nil {
		fmt.Fprintln(os.Stderr, "optcc-train:", err)
		os.Exit(1)
	}
	defer tr.Close()
	if *printPlan {
		fmt.Println(tr.Plan())
		fmt.Printf("engine: %s\n", tr.Engine())
	}
	if *resume != "" {
		f, err := os.Open(*resume)
		if err != nil {
			fmt.Fprintln(os.Stderr, "optcc-train:", err)
			os.Exit(1)
		}
		err = tr.LoadCheckpoint(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "optcc-train:", err)
			os.Exit(1)
		}
		fmt.Printf("resumed from %s at iteration %d\n", *resume, tr.Iteration())
	}
	fmt.Printf("config=%s  model: V=%d H=%d blocks=%d  PP=%d DP=%d  micro=%d×%d\n",
		cfg.Opt.Name(), cfg.Model.Vocab, cfg.Model.Hidden, cfg.Model.Blocks,
		cfg.Stages, cfg.DPGroups, cfg.MicroBatch, cfg.MicroBatches)

	tr.Train(*iters, func(it int, loss float64) {
		if it%*evalEvery == 0 || it == *iters {
			fmt.Printf("iter %5d  loss %7.4f  val PPL %7.3f\n", it, loss, tr.ValidationPerplexity(500))
		}
	})

	tasks := data.TaskSuite(corpus, cfg.Model.Context, 200, *seed+1000)
	accs := tr.TaskAccuracies(tasks)
	var names []string
	for n := range accs {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Println("zero-shot probe tasks:")
	for _, n := range names {
		fmt.Printf("  %-10s %5.1f%%\n", n, accs[n]*100)
	}
	if *stats {
		eps, diff, cos := tr.Stats().Summary()
		fmt.Printf("Fig. 11 conditions: |Avg ε|=%.5f  |Avg ΔY|=%.5f  |cos|=%.5f over %d sends\n",
			eps, diff, cos, tr.Stats().Count())
	}
	if st, ok := tr.CollectiveStats(); ok {
		fmt.Println("executed collective traffic:")
		for _, c := range collective.Classes() {
			cs := st.For(c)
			fmt.Printf("  %-4s %12d bytes  %9d messages  %7d steps\n", c, cs.Bytes, cs.Messages, cs.Steps)
		}
	}
	if *reconcile {
		rep, err := tr.ReconcileTrace()
		if err != nil {
			fmt.Fprintln(os.Stderr, "optcc-train:", err)
			os.Exit(1)
		}
		fmt.Print(rep)
	}
	if *trace != "" {
		name := fmt.Sprintf("optcc-train %s dp%d×pp%d", cfg.Opt.Name(), cfg.DPGroups, cfg.Stages)
		if err := writeTrace(tr, *trace, name); err != nil {
			fmt.Fprintln(os.Stderr, "optcc-train:", err)
			os.Exit(1)
		}
		fmt.Printf("executed trace written to %s (%d spans, %d dropped)\n",
			*trace, tr.Recorder().Count(), tr.Recorder().Dropped())
	}
	if *metricsOut != "" {
		if err := writeMetrics(tr, *metricsOut); err != nil {
			fmt.Fprintln(os.Stderr, "optcc-train:", err)
			os.Exit(1)
		}
		fmt.Printf("metrics written to %s\n", *metricsOut)
	}
	if *checkpoint != "" {
		if err := writeCheckpoint(tr, *checkpoint); err != nil {
			fmt.Fprintln(os.Stderr, "optcc-train:", err)
			os.Exit(1)
		}
		fmt.Printf("checkpoint written to %s\n", *checkpoint)
	}
}

// writeTrace exports the executed-run trace to path, propagating the
// Close error (an unflushed trace must not report success).
func writeTrace(tr *train.Trainer, path, processName string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.WriteRecorderTrace(f, tr.Recorder(), processName); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeMetrics snapshots the trainer's counter registry to path as JSON.
func writeMetrics(tr *train.Trainer, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.Metrics().WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeCheckpoint saves the training state to path, propagating the
// Close error: a checkpoint whose final flush failed (full disk, broken
// mount) must not report a successful save.
func writeCheckpoint(tr *train.Trainer, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.SaveCheckpoint(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
