package main

import (
	"fmt"

	"repro/internal/autotune"
	"repro/internal/cluster"
	"repro/internal/collective"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/sim"
	"repro/internal/train"
)

// tunePlan searches the placement space at paper scale on the trainer's
// DP×PP grid (TP8, the paper's node-local tensor parallelism) and
// returns the winner lowered onto the stand-in model's shapes plus the
// ranked table. The trainer then executes the winner, and
// verifyAutotuned pins the executed wire volumes to the prediction.
func tunePlan(cfg train.Config, seed int64, budget float64, top int) (core.Config, *autotune.Result, error) {
	eff, err := experiments.CalibratedEfficiency()
	if err != nil {
		return core.Config{}, nil, err
	}
	sc := sim.PaperScenario(cluster.GPT25B, core.Baseline())
	sc.Map = cluster.Mapping{TP: 8, DP: cfg.DPGroups, PP: cfg.Stages}
	sc.Topo.Efficiency = eff
	ev, err := sim.NewEvaluator(sc)
	if err != nil {
		return core.Config{}, nil, err
	}
	qm := autotune.DefaultQualityModel()
	qm.Budget = budget
	res, err := autotune.Search(ev, autotune.DefaultSpace(cfg.Stages), qm, autotune.Options{Seed: seed, Top: top})
	if err != nil {
		return core.Config{}, nil, err
	}
	return experiments.ScaledOpt(res.Winner.Config), res, nil
}

// verifyAutotuned closes the autotune loop after training: every
// executed wire volume — per collective class in aggregate, and DP sync
// bucket by bucket — must equal autotune.PredictExecution's numbers at
// tolerance zero. A mismatch means the plan the trainer executed is not
// the plan the autotuner priced, and errors loudly.
func verifyAutotuned(tr *train.Trainer, iters int) error {
	pred, err := autotune.PredictExecution(tr.Plan(), autotune.Probes{
		DenseBoundaryBytes: tr.DenseBoundaryBytes(),
		CBWireBytes:        tr.ProbeCBWireBytes(),
		DPPayloadBytes:     tr.ProbeDPPayloadBytes,
		EmbTableBytes:      tr.EmbTableBytes(),
	})
	if err != nil {
		return err
	}
	st, ok := tr.CollectiveStats()
	if !ok {
		return fmt.Errorf("autotune: no collective transport to verify against (1×1 grid)")
	}
	for _, chk := range []struct {
		class collective.Class
		per   int64
	}{
		{collective.ClassPP, pred.PPBytes},
		{collective.ClassDP, pred.DPBytes},
		{collective.ClassEmb, pred.EmbBytes},
	} {
		got, want := st.For(chk.class).Bytes, chk.per*int64(iters)
		if got != want {
			return fmt.Errorf("autotune: executed %v volume %d B over %d iterations, predicted %d B (Δ %d)",
				chk.class, got, iters, want, got-want)
		}
	}
	if exec, ok := tr.ExecutedDPBuckets(); ok {
		if len(exec) != len(pred.DPBuckets) {
			return fmt.Errorf("autotune: %d executed DP-sync stages, predicted %d", len(exec), len(pred.DPBuckets))
		}
		for s := range pred.DPBuckets {
			if len(exec[s]) != len(pred.DPBuckets[s]) {
				return fmt.Errorf("autotune: stage %d executed %d buckets, predicted %d",
					s, len(exec[s]), len(pred.DPBuckets[s]))
			}
			for bi := range pred.DPBuckets[s] {
				if exec[s][bi] != pred.DPBuckets[s][bi] {
					return fmt.Errorf("autotune: stage %d bucket %d executed %d B, predicted %d B",
						s, bi, exec[s][bi], pred.DPBuckets[s][bi])
				}
			}
		}
	}
	fmt.Printf("autotune verify ok: executed pp/dp/emb volumes == prediction (tol 0) over %d iterations\n", iters)
	return nil
}
