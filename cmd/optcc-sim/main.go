// Command optcc-sim runs the calibrated timing simulator on the paper's
// cluster for any model / parallel-mapping / Optimus-CC configuration,
// printing iteration time, projected training days, an exposed-time
// breakdown (Fig. 3/10 style), and optionally an ASCII timing diagram
// (Fig. 4 style).
//
// Examples:
//
//	optcc-sim -model 2.5b -config baseline -timeline
//	optcc-sim -model 8.3b -config cbfesc
//	optcc-sim -model 9.2b -config cbfesc -tp 2 -pp 16
//	optcc-sim -model 2.5b -autotune -autotune-assert
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/autotune"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/sim"
)

var specs = map[string]cluster.GPTSpec{
	"2.5b": cluster.GPT25B,
	"8.3b": cluster.GPT83B,
	"9.2b": cluster.GPT92B,
	"39b":  cluster.GPT39B,
	"175b": cluster.GPT175B,
}

var configs = map[string]func() core.Config{
	"baseline": core.Baseline,
	"cb":       core.CB,
	"cbfe":     core.CBFE,
	"cbfesc":   core.CBFESC,
	"naivedp":  core.NaiveDP,
	"naivecb":  core.NaiveCB,
}

func main() {
	model := flag.String("model", "2.5b", "model: 2.5b, 8.3b, 9.2b, 39b, 175b")
	config := flag.String("config", "baseline", "config: baseline, cb, cbfe, cbfesc, naivedp, naivecb")
	tp := flag.Int("tp", 8, "tensor-parallel ways")
	dp := flag.Int("dp", 4, "data-parallel ways")
	pp := flag.Int("pp", 4, "pipeline-parallel ways")
	nodes := flag.Int("nodes", 16, "cluster nodes (8 GPUs each)")
	iters := flag.Int("iters", 230000, "training iterations for the day projection")
	timeline := flag.Bool("timeline", false, "print the Fig. 4 style ASCII timing diagram")
	width := flag.Int("width", 120, "timeline width in columns")
	trace := flag.String("trace", "", "write the predicted iteration as Chrome trace-event JSON (pid 1; merge with an executed optcc-train -trace file to compare in Perfetto)")
	price := flag.Bool("price", false, "print the candidate's sim.Estimate as JSON and exit — the same wire format optcc-serve's /v1/price returns, for bit-for-bit diffing (CI smoke)")
	bucketBytes := flag.Int64("bucket-bytes", 0, "DP-sync bucket budget in bytes for -price (0 = plan default)")
	tune := flag.Bool("autotune", false, "search the placement space with the simulator as the oracle and print the ranked candidate table (no simulation run)")
	tuneBudget := flag.Float64("autotune-budget", 0.10, "quality-loss budget (estimated ΔPPL) candidates must fit")
	tuneSeed := flag.Int64("autotune-seed", 1, "search seed (same seed, same ranked table)")
	tuneMax := flag.Int("autotune-max", 4096, "admitted-space size up to which the search is exhaustive; larger spaces anneal")
	tuneTop := flag.Int("autotune-top", 12, "ranked-table rows to print (0 = all)")
	tuneAssert := flag.Bool("autotune-assert", false, "exit 1 unless the winner's predicted cost ≤ the hand-picked cbfesc plan's (CI smoke)")
	flag.Parse()

	spec, ok := specs[strings.ToLower(*model)]
	if !ok {
		fatalf("unknown model %q (have: %v)", *model, keys(specs))
	}
	mk, ok := configs[strings.ToLower(*config)]
	if !ok {
		fatalf("unknown config %q (have: %v)", *config, keys(configs))
	}

	eff, err := experiments.CalibratedEfficiency()
	if err != nil {
		fatalf("calibration: %v", err)
	}
	sc := sim.PaperScenario(spec, mk())
	sc.Map = cluster.Mapping{TP: *tp, DP: *dp, PP: *pp}
	sc.Topo.Nodes = *nodes
	sc.Topo.Efficiency = eff
	sc.Iterations = *iters

	if *price {
		runPrice(sc, *bucketBytes)
		return
	}
	if *tune {
		runAutotune(sc, *tuneBudget, *tuneSeed, *tuneMax, *tuneTop, *tuneAssert)
		return
	}

	r, err := sim.Simulate(sc)
	if err != nil {
		fatalf("simulate: %v", err)
	}
	fmt.Printf("%s on %d GPUs (%s), %s\n", spec.Name, sc.Map.Ways(), sc.Map, sc.Cfg.Name())
	fmt.Print(sim.BreakdownReport(sc.Cfg.Name(), r))
	if *timeline {
		tl, err := sim.Timeline(sc, *width)
		if err != nil {
			fatalf("timeline: %v", err)
		}
		fmt.Println()
		fmt.Print(tl)
	}
	if *trace != "" {
		if err := writeTrace(sc, *trace); err != nil {
			fatalf("trace: %v", err)
		}
		fmt.Printf("predicted trace written to %s\n", *trace)
	}
}

// runPrice prices the candidate through the same sim.Evaluator path
// optcc-serve uses and prints the Estimate as one JSON line. CI diffs
// this (jq -S canonicalized) against the service's .estimate field to
// prove served numbers are bit-identical to direct evaluation.
func runPrice(sc sim.Scenario, bucketBytes int64) {
	ev, err := sim.NewEvaluator(sc)
	if err != nil {
		fatalf("price: %v", err)
	}
	est, err := ev.Price(sc.Cfg, bucketBytes)
	if err != nil {
		fatalf("price: %v", err)
	}
	data, err := json.Marshal(est)
	if err != nil {
		fatalf("price: %v", err)
	}
	fmt.Println(string(data))
}

// runAutotune searches the placement space on the scenario's grid and
// prints the ranked candidate table. With assert set it additionally
// requires the winner's predicted cost to match or beat the hand-picked
// cbfesc plan — the CI smoke check.
func runAutotune(sc sim.Scenario, budget float64, seed int64, max, top int, assert bool) {
	ev, err := sim.NewEvaluator(sc)
	if err != nil {
		fatalf("autotune: %v", err)
	}
	qm := autotune.DefaultQualityModel()
	qm.Budget = budget
	res, err := autotune.Search(ev, autotune.DefaultSpace(sc.Map.PP), qm, autotune.Options{
		Seed: seed, ExhaustiveLimit: max, Top: top,
	})
	if err != nil {
		fatalf("autotune: %v", err)
	}
	fmt.Print(res.Table())
	if assert {
		hand, err := ev.Price(core.CBFESC(), 0)
		if err != nil {
			fatalf("autotune: pricing hand-picked plan: %v", err)
		}
		if res.Winner.Estimate.IterationSec > hand.IterationSec+1e-12 {
			fatalf("autotune: winner %s predicts %.6fs, hand-picked cbfesc %.6fs — search lost to the hand-picked point",
				res.Winner.Candidate.Key(), res.Winner.Estimate.IterationSec, hand.IterationSec)
		}
		fmt.Printf("assert ok: winner %.4fs ≤ hand-picked cbfesc %.4fs\n",
			res.Winner.Estimate.IterationSec, hand.IterationSec)
	}
}

// writeTrace saves the predicted-iteration trace to path, propagating
// the Close error (an unflushed trace must not report success).
func writeTrace(sc sim.Scenario, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := sim.WriteTrace(sc, f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func keys[V any](m map[string]V) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "optcc-sim: "+format+"\n", args...)
	os.Exit(1)
}
