// Command optcc-serve runs the what-if service: a std-lib HTTP JSON API
// over internal/whatif's pooled-evaluator engine, answering placement
// what-ifs at high QPS with plan-keyed caching and request coalescing.
//
//	POST /v1/price     {"grid":{"model":"2.5b","tp":8,"dp":4,"pp":4},
//	                    "config":{"preset":"cbfesc"},"bucket_bytes":4194304}
//	POST /v1/autotune  {"grid":{"model":"2.5b"},"budget":0.10,"seed":1}
//	GET  /metrics      engine counters (text; ?format=json for JSON)
//	GET  /healthz      liveness
//
// Served estimates are bit-identical to optcc-sim: the same calibrated
// efficiency, the same scenario defaults, the same evaluator — CI diffs
// a served /v1/price estimate against optcc-sim -price output and a
// served /v1/autotune table against optcc-sim -autotune, byte for byte.
//
// -cpuprofile/-memprofile capture a serving profile (drive load with
// optcc-bench -serve-bench -serve-target) for PGO refresh; see
// bench/README.md.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/prof"
	"repro/internal/whatif"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	cacheEntries := flag.Int("cache", whatif.DefaultCacheEntries, "plan-keyed LRU capacity in entries (negative disables caching)")
	evaluators := flag.Int("evaluators", 0, "max evaluators per scenario (0 = GOMAXPROCS)")
	maxBatch := flag.Int("max-batch", whatif.DefaultMaxBatch, "max queries drained per evaluator checkout")
	batchWindow := flag.Duration("batch-window", 0, "wait this long before draining so a burst coalesces into one batch (0 = drain immediately)")
	timeout := flag.Duration("timeout", 5*time.Second, "per-request /v1/price timeout")
	tuneTimeout := flag.Duration("autotune-timeout", 120*time.Second, "per-request /v1/autotune timeout")
	spanCapacity := flag.Int("span-capacity", 0, "record one span per batch drain into a ring of this capacity, dumped as a summary on shutdown (0 = off)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile (PGO feed) to this file on shutdown")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on shutdown")
	flag.Parse()

	eff, err := experiments.CalibratedEfficiency()
	if err != nil {
		fatalf("calibration: %v", err)
	}

	stop, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		fatalf("%v", err)
	}

	var rec *obs.Recorder
	if *spanCapacity > 0 {
		rec = obs.NewRecorder([]string{"whatif"}, *spanCapacity)
	}
	eng := whatif.NewEngine(whatif.Options{
		CacheEntries:  *cacheEntries,
		MaxEvaluators: *evaluators,
		BatchWindow:   *batchWindow,
		MaxBatch:      *maxBatch,
		Recorder:      rec,
	})
	srv := whatif.NewServer(eng, whatif.ServerOptions{
		Efficiency:      eff,
		PriceTimeout:    *timeout,
		AutotuneTimeout: *tuneTimeout,
	})

	hs := &http.Server{Addr: *addr, Handler: srv}
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	errc := make(chan error, 1)
	go func() {
		fmt.Printf("optcc-serve: listening on %s (efficiency %.4f)\n", *addr, eff)
		errc <- hs.ListenAndServe()
	}()
	select {
	case err := <-errc:
		fatalf("serve: %v", err)
	case <-ctx.Done():
	}

	fmt.Println("optcc-serve: shutting down")
	shutCtx, shutCancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer shutCancel()
	if err := hs.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "optcc-serve: shutdown: %v\n", err)
	}

	fmt.Println("optcc-serve: final metrics")
	eng.Registry().WriteText(os.Stdout)
	if rec != nil {
		fmt.Printf("optcc-serve: recorded %d batch spans (%d dropped)\n", rec.Len(0), rec.Dropped())
	}
	if err := stop(); err != nil {
		fatalf("%v", err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "optcc-serve: "+format+"\n", args...)
	os.Exit(1)
}
