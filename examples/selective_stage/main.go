// selective_stage sweeps selective stage compression (§7): it simulates
// the speedup of compressing 0–100% of pipeline stages' data-parallel
// traffic on the paper's cluster, trains the stand-in model at each
// setting to measure the quality cost, and contrasts the trade-off with
// naive rank adjustment (Fig. 13).
package main

import (
	"fmt"
	"log"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/experiments"
	"repro/internal/sim"
	"repro/internal/train"
)

func main() {
	eff, err := experiments.CalibratedEfficiency()
	if err != nil {
		log.Fatal(err)
	}
	corpus, err := data.Generate(data.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	baseSc := sim.PaperScenario(cluster.GPT25B, core.CBFE())
	baseSc.Topo.Efficiency = eff
	base, err := sim.Simulate(baseSc)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("selective stage compression sweep (GPT-2.5B, CB+FE base):")
	fmt.Println("stages  speedup(sim)  val PPL(real)")
	for _, frac := range []float64{0, 0.25, 0.5, 0.75, 1.0} {
		cfg := core.CBFE()
		cfg.SelectiveStageFraction = frac
		cfg.DPRank = 128
		sc := sim.PaperScenario(cluster.GPT25B, cfg)
		sc.Topo.Efficiency = eff
		r, err := sim.Simulate(sc)
		if err != nil {
			log.Fatal(err)
		}

		tcfg := train.DefaultConfig()
		tcfg.MicroBatch = 32
		tcfg.Opt = experiments.ScaledOpt(cfg)
		tr, err := train.New(tcfg, corpus)
		if err != nil {
			log.Fatal(err)
		}
		tr.Train(400, nil)
		fmt.Printf("%5.0f%%  %+11.2f%%  %12.3f\n",
			frac*100, (base.IterationSec/r.IterationSec-1)*100, tr.ValidationPerplexity(500))
	}
	fmt.Println("\npaper's takeaway: the stage knob trades speed for quality smoothly,")
	fmt.Println("and always beats tuning the compression rank (Fig. 13 right).")
}
