// gpt25b_sim reproduces the Table 2 timing rows for GPT-2.5B and GPT-8.3B
// on the paper's cluster, prints the exposed-time breakdown for every
// technique combination, and renders the Fig. 4 style timing diagram for
// baseline vs full Optimus-CC.
package main

import (
	"fmt"
	"log"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/sim"
)

func main() {
	eff, err := experiments.CalibratedEfficiency()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("calibrated cluster efficiency: %.4f (fit to GPT-2.5B baseline = 14.72 days)\n\n", eff)

	for _, spec := range []cluster.GPTSpec{cluster.GPT25B, cluster.GPT83B} {
		fmt.Printf("=== %s (TP8/DP4/PP4, 230K iterations) ===\n", spec.Name)
		var base sim.Result
		for i, cfg := range []core.Config{core.Baseline(), core.CB(), core.CBFE(), core.CBFESC()} {
			sc := sim.PaperScenario(spec, cfg)
			sc.Topo.Efficiency = eff
			r, err := sim.Simulate(sc)
			if err != nil {
				log.Fatal(err)
			}
			if i == 0 {
				base = r
			}
			fmt.Printf("%-14s %6.2f days  (%+.2f%%)\n", cfg.Name(), r.Days, r.Speedup(base)*100)
			fmt.Print(sim.BreakdownReport(cfg.Name(), r))
		}
		fmt.Println()
	}

	for _, cfg := range []core.Config{core.Baseline(), core.CBFESC()} {
		sc := sim.PaperScenario(cluster.GPT25B, cfg)
		sc.Topo.Efficiency = eff
		tl, err := sim.Timeline(sc, 110)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(tl)
	}
}
