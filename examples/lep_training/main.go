// lep_training demonstrates the paper's central quality result on real
// training: naive inter-stage compression (no lazy error propagation, no
// epilogue-only restriction) badly damages the model, while compressed
// backpropagation with both enablers stays close to the uncompressed
// baseline. It also prints the Fig. 11 evidence that the Eq. 14
// independence conditions hold during training.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/experiments"
	"repro/internal/train"
)

func main() {
	corpus, err := data.Generate(data.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	run := func(name string, opt core.Config, stats bool) *train.Trainer {
		cfg := train.DefaultConfig()
		cfg.MicroBatch = 32
		cfg.Opt = experiments.ScaledOpt(opt)
		cfg.CollectStats = stats
		tr, err := train.New(cfg, corpus)
		if err != nil {
			log.Fatal(err)
		}
		tr.Train(600, nil)
		fmt.Printf("%-22s val PPL %7.3f\n", name, tr.ValidationPerplexity(500))
		return tr
	}

	fmt.Println("600 iterations of real pretraining on the synthetic corpus:")
	run("baseline", core.Baseline(), false)
	cb := run("CB (LEP+epilogue)", core.CB(), true)
	run("CB naive (no LEP/epi)", core.NaiveCB(), false)

	eps, diff, cos := cb.Stats().Summary()
	fmt.Printf("\nFig. 11 conditions on the compressed boundary (%d sends):\n", cb.Stats().Count())
	fmt.Printf("  mean |Avg(ε)|          = %.5f\n", eps)
	fmt.Printf("  mean |Avg(Y⁽ⁱ⁾−Y⁽ⁱ⁺ⁿ⁾)| = %.5f\n", diff)
	fmt.Printf("  mean |cos(ε, ΔY)|      = %.5f  (≈0 ⇒ Eq. 14 holds ⇒ G* ≈ G)\n", cos)
}
