// Quickstart: the smallest end-to-end tour of the Optimus-CC
// reproduction. It builds the synthetic corpus, trains the stand-in
// model for a few hundred iterations under the full Optimus-CC
// configuration (compressed backpropagation + fused embedding sync +
// selective stage compression), and simulates the same configuration's
// speedup on the paper's 128-GPU cluster.
package main

import (
	"fmt"
	"log"

	"repro/internal/cluster"
	"repro/internal/collective"
	"repro/internal/compress"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/experiments"
	"repro/internal/sim"
	"repro/internal/train"
)

func main() {
	// 1. Real training with Optimus-CC on the scaled stand-in model.
	corpus, err := data.Generate(data.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	cfg := train.DefaultConfig()
	cfg.MicroBatch = 32
	cfg.Opt = experiments.ScaledOpt(core.CBFESC())
	tr, err := train.New(cfg, corpus)
	if err != nil {
		log.Fatal(err)
	}
	defer tr.Close()
	// The compiled plan is the single artifact driving both the trainer
	// below and the simulator further down — inspect it directly.
	fmt.Println(tr.Plan())
	fmt.Println("training the stand-in LM with CB+FE+SC ...")
	tr.Train(300, func(it int, loss float64) {
		if it%100 == 0 {
			fmt.Printf("  iter %4d  loss %.4f  val PPL %.3f\n", it, loss, tr.ValidationPerplexity(300))
		}
	})

	// Everything communicated for real: the micro-batches ran on the
	// 1F1B pipeline executor (activations and activation-gradients
	// shipped rank-to-rank over the collective transport) and the sync
	// phases on the ring collectives. Compare executed traffic with the
	// analytic predictions — the §6 Eq. 16 embedding factor and the
	// fwd+bwd inter-stage model.
	if st, ok := tr.CollectiveStats(); ok {
		iters := float64(tr.Iteration())
		d := cfg.DPGroups
		embV := float64(int64(cfg.Model.Vocab*cfg.Model.Hidden) * compress.ElemBytes)
		execFactor := float64(st.For(collective.ClassEmb).Bytes) / (iters * float64(2*d) * embV)
		fmt.Printf("\nexecuted collective traffic (%.0f iterations):\n", iters)
		for _, c := range collective.Classes() {
			cs := st.For(c)
			fmt.Printf("  %-4s %10d bytes  %8d messages  %6d steps\n", c, cs.Bytes, cs.Messages, cs.Steps)
		}
		fmt.Printf("  fused emb sync: executed %.3f·V per rank per iteration, Eq. 16 predicts %.3f·V\n",
			execFactor, core.EmbSyncFusedVolumeFactor(d))

		dense := int64(cfg.MicroBatch*cfg.Model.Hidden) * compress.ElemBytes
		cmp := core.LowRankWireBytes(cfg.MicroBatch, cfg.Model.Hidden, cfg.Opt.CBRank, compress.ElemBytes)
		pred, err := sim.PredictInterStage(cfg.Opt, cfg.Stages, cfg.MicroBatches, dense, cmp)
		if err != nil {
			log.Fatal(err)
		}
		pp := st.For(collective.ClassPP)
		fmt.Printf("  1F1B executor: executed %d pp bytes in %d messages; fwd+bwd model predicts %d in %d\n",
			pp.Bytes, pp.Messages,
			pred.Bytes*int64(cfg.DPGroups)*int64(iters), pred.Messages*int64(cfg.DPGroups)*int64(iters))
	}

	// 2. Simulated speedup of the same configuration on the paper's
	// cluster (128 A100s, TP8/DP4/PP4).
	eff, err := experiments.CalibratedEfficiency()
	if err != nil {
		log.Fatal(err)
	}
	base := sim.PaperScenario(cluster.GPT25B, core.Baseline())
	base.Topo.Efficiency = eff
	full := sim.PaperScenario(cluster.GPT25B, core.CBFESC())
	full.Topo.Efficiency = eff
	rb, err := sim.Simulate(base)
	if err != nil {
		log.Fatal(err)
	}
	rf, err := sim.Simulate(full)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nGPT-2.5B on 128 GPUs: baseline %.2f days → Optimus-CC %.2f days (%+.2f%% speedup)\n",
		rb.Days, rf.Days, rf.Speedup(rb)*100)
}
